//! Monitor-interval (MI) accounting for the PCC family.
//!
//! PCC senders slice time into consecutive monitor intervals, send at a fixed
//! target rate within each, and compute a utility value for an MI once every
//! packet sent in it has been acknowledged or declared lost (§3 of the
//! paper). [`MiTracker`] implements that bookkeeping: it attributes sent
//! packets to the open MI, matches ACKs/losses back to their MI, and emits a
//! completed [`MiStats`] — carrying throughput, loss rate, mean RTT, RTT
//! deviation, RTT gradient and the regression residual that Proteus' per-MI
//! noise gate needs (§5).
//!
//! This module is on the per-ACK hot path of every PCC-family sender, so it
//! is built to do **no hashing, no heap allocation and no linear scans** per
//! event in steady state:
//!
//! * packet→MI attribution is a seq-indexed ring (`AttributionRing`, the
//!   same shape as `netsim::inflight::InflightTracker`) instead of a SipHash
//!   `HashMap<SeqNr, MiId>` — O(1) insert/remove with zero per-packet
//!   allocator traffic once the ring has grown to the flow's in-flight size;
//! * MI ids are handed out sequentially and `pending` is drained in order,
//!   so the pending ids are always the contiguous range starting at the
//!   front id and an id resolves to its `MiState` by direct indexing — no
//!   linear `find`;
//! * each `MiState` is a fixed-size struct: the RTT-gradient fit runs on a
//!   streaming `RegressionAccumulator` instead of a stored
//!   `Vec<(f64, f64)>`, making `MiState::finish` O(1) in the number of RTT
//!   samples;
//! * completed MIs are reported through a caller-provided drain buffer
//!   (`on_ack_into`/`on_loss_into`) rather than a freshly allocated
//!   `Vec<MiStats>` per event.

use std::collections::VecDeque;

use proteus_stats::{RegressionAccumulator, Welford};

use crate::packet::{AckInfo, LossInfo, SentPacket, SeqNr};
use crate::time::{Dur, Time};

/// Identifier of a monitor interval within one flow.
pub type MiId = u64;

/// Performance metrics of one completed monitor interval.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MiStats {
    /// Sequential MI identifier.
    pub id: MiId,
    /// MI start time.
    pub start: Time,
    /// MI end (close) time.
    pub end: Time,
    /// Sending rate the controller targeted during this MI, bytes/sec.
    pub target_rate: f64,
    /// Bytes handed to the network during the MI.
    pub bytes_sent: u64,
    /// Bytes acknowledged (of those sent in this MI).
    pub bytes_acked: u64,
    /// Bytes declared lost (of those sent in this MI).
    pub bytes_lost: u64,
    /// Packets sent.
    pub pkts_sent: u64,
    /// Packets acknowledged.
    pub pkts_acked: u64,
    /// Packets lost.
    pub pkts_lost: u64,
    /// Achieved goodput: acked bytes / MI duration, bytes/sec.
    pub throughput: f64,
    /// Raw send rate: sent bytes / MI duration, bytes/sec.
    pub send_rate: f64,
    /// Packet loss rate within the MI, `lost / sent` in `[0, 1]`.
    pub loss_rate: f64,
    /// Mean RTT of ACKed packets, seconds. Zero when no samples.
    pub rtt_mean: f64,
    /// RTT standard deviation `σ(RTT)` of the MI, seconds — Proteus-S's
    /// competition signal (Eq. 2).
    pub rtt_dev: f64,
    /// RTT gradient `d(RTT)/dt`: least-squares slope of RTT vs. send time,
    /// dimensionless (seconds per second).
    pub rtt_gradient: f64,
    /// Normalized regression residual: RMS residual of the gradient fit
    /// divided by the MI duration (§5 "Regression Error Tolerance"),
    /// comparable in units to `rtt_gradient`.
    pub gradient_error: f64,
    /// Number of RTT samples that informed the latency metrics.
    pub rtt_samples: u64,
    /// Smallest RTT sample in the MI, seconds (0 when none).
    pub rtt_min: f64,
    /// Largest RTT sample in the MI, seconds (0 when none).
    pub rtt_max: f64,
}

impl MiStats {
    /// Duration of the MI.
    pub fn duration(&self) -> Dur {
        self.end.since(self.start)
    }
}

/// One in-flight monitor interval. Fixed-size: per-ACK updates touch only
/// scalar accumulators, and `MiState::finish` is O(1).
#[derive(Debug)]
struct MiState {
    id: MiId,
    start: Time,
    /// Set when the sender moves on to the next MI.
    end: Option<Time>,
    target_rate: f64,
    bytes_sent: u64,
    bytes_acked: u64,
    bytes_lost: u64,
    pkts_sent: u64,
    pkts_acked: u64,
    pkts_lost: u64,
    outstanding: u64,
    /// Streaming least-squares fit of `(send time relative to MI start [s],
    /// RTT [s])` per ACKed packet — the RTT-gradient regression.
    reg: RegressionAccumulator,
    rtt_acc: Welford,
}

impl MiState {
    fn new(id: MiId, start: Time, target_rate: f64) -> Self {
        Self {
            id,
            start,
            end: None,
            target_rate,
            bytes_sent: 0,
            bytes_acked: 0,
            bytes_lost: 0,
            pkts_sent: 0,
            pkts_acked: 0,
            pkts_lost: 0,
            outstanding: 0,
            reg: RegressionAccumulator::new(),
            rtt_acc: Welford::new(),
        }
    }

    fn is_complete(&self) -> bool {
        self.end.is_some() && self.outstanding == 0
    }

    fn finish(&self) -> MiStats {
        let end = self.end.expect("finish() requires a closed MI");
        let dur_s = end.since(self.start).as_secs_f64().max(1e-9);
        let (gradient, error) = match self.reg.fit() {
            Some(fit) => (fit.slope, fit.rms_residual / dur_s),
            None => (0.0, 0.0),
        };
        MiStats {
            id: self.id,
            start: self.start,
            end,
            target_rate: self.target_rate,
            bytes_sent: self.bytes_sent,
            bytes_acked: self.bytes_acked,
            bytes_lost: self.bytes_lost,
            pkts_sent: self.pkts_sent,
            pkts_acked: self.pkts_acked,
            pkts_lost: self.pkts_lost,
            throughput: self.bytes_acked as f64 / dur_s,
            send_rate: self.bytes_sent as f64 / dur_s,
            loss_rate: if self.pkts_sent == 0 {
                0.0
            } else {
                self.pkts_lost as f64 / self.pkts_sent as f64
            },
            rtt_mean: self.rtt_acc.mean(),
            rtt_dev: self.rtt_acc.std_dev(),
            rtt_gradient: gradient,
            gradient_error: error,
            rtt_samples: self.rtt_acc.count(),
            rtt_min: self.rtt_acc.min().unwrap_or(0.0),
            rtt_max: self.rtt_acc.max().unwrap_or(0.0),
        }
    }
}

/// Sentinel marking a ring slot whose packet is not attributed to any MI
/// (already resolved, skipped, or sent with no MI open).
const NO_MI: MiId = MiId::MAX;

/// Seq-indexed packet→MI attribution ring, in the style of
/// `netsim::inflight::InflightTracker`: slot `i` holds the MI id of the
/// packet with sequence number `head_seq + i` (or [`NO_MI`]). Senders hand
/// out sequence numbers monotonically, so insert is a push at the tail and
/// removal is direct indexing — O(1) amortized, no hashing, and no
/// allocation once the ring has reached the flow's steady-state in-flight
/// window.
#[derive(Debug, Default)]
struct AttributionRing {
    slots: VecDeque<MiId>,
    /// Sequence number of `slots[0]`.
    head_seq: SeqNr,
    /// Number of non-[`NO_MI`] slots.
    live: usize,
}

impl AttributionRing {
    /// Attributes `seq` to `mi`. Sequence numbers must be non-decreasing
    /// across calls and unused; gaps are tolerated and treated as
    /// unattributed.
    fn insert(&mut self, seq: SeqNr, mi: MiId) {
        if self.slots.is_empty() {
            self.head_seq = seq;
        }
        let idx = (seq - self.head_seq) as usize;
        debug_assert!(
            idx >= self.slots.len(),
            "sequence numbers must be inserted in increasing order"
        );
        while self.slots.len() < idx {
            self.slots.push_back(NO_MI);
        }
        self.slots.push_back(mi);
        self.live += 1;
    }

    /// Removes and returns the MI attribution of `seq`, if present.
    fn remove(&mut self, seq: SeqNr) -> Option<MiId> {
        let idx = seq.checked_sub(self.head_seq)? as usize;
        if idx >= self.slots.len() {
            return None;
        }
        let mi = std::mem::replace(&mut self.slots[idx], NO_MI);
        if mi == NO_MI {
            return None;
        }
        self.live -= 1;
        if idx == 0 {
            // Drop leading holes; amortized O(1) (each slot pops once).
            while let Some(&NO_MI) = self.slots.front() {
                self.slots.pop_front();
                self.head_seq += 1;
            }
        }
        Some(mi)
    }

    /// Number of outstanding attributed packets.
    fn len(&self) -> usize {
        self.live
    }
}

/// Attributes packets to monitor intervals and emits completed [`MiStats`].
///
/// The owner (a PCC-style controller) calls [`MiTracker::start_mi`] whenever
/// it changes target rate, forwards every send/ACK/loss event, and drains
/// completed MIs — in id order — from the buffer it passes to
/// [`MiTracker::on_ack_into`]/[`MiTracker::on_loss_into`]. The buffer is
/// appended to (never cleared) so the caller can reuse one scratch `Vec`
/// across events and keep the steady-state path allocation-free.
#[derive(Default)]
pub struct MiTracker {
    next_id: MiId,
    /// Pending MIs, oldest first. Ids are sequential and the queue is pushed
    /// and drained in order, so the stored ids are exactly
    /// `front.id ..= front.id + len − 1` — an id maps to its slot by direct
    /// indexing.
    pending: VecDeque<MiState>,
    /// Which MI each outstanding packet belongs to.
    seq_to_mi: AttributionRing,
}

impl MiTracker {
    /// Creates an empty tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Starts a new MI at `now` targeting `rate` bytes/sec, closing the
    /// previous one. Returns the new MI's id.
    pub fn start_mi(&mut self, now: Time, rate: f64) -> MiId {
        if let Some(open) = self.pending.back_mut() {
            if open.end.is_none() {
                open.end = Some(now);
            }
        }
        let id = self.next_id;
        self.next_id += 1;
        self.pending.push_back(MiState::new(id, now, rate));
        id
    }

    /// The id of the currently open MI, if any.
    pub fn open_mi(&self) -> Option<MiId> {
        self.pending
            .back()
            .filter(|mi| mi.end.is_none())
            .map(|mi| mi.id)
    }

    /// Start time of the currently open MI.
    pub fn open_mi_start(&self) -> Option<Time> {
        self.pending
            .back()
            .filter(|mi| mi.end.is_none())
            .map(|mi| mi.start)
    }

    /// Number of MIs not yet fully accounted.
    pub fn pending_count(&self) -> usize {
        self.pending.len()
    }

    /// Records a transmitted packet against the open MI. Packets sent while
    /// no MI is open (e.g. before the controller starts its first interval)
    /// are ignored.
    ///
    /// Invariant: the newest pending MI is always the open one — `start_mi`
    /// closes the previous MI only by pushing its successor, so there is no
    /// state in which packets could arrive "in the gap" after a close and be
    /// silently dropped (the pre-ring implementation guarded against that
    /// with a silent `return`; the invariant is asserted instead, and
    /// `every_sent_packet_between_mis_is_accounted` pins the behaviour).
    pub fn on_sent(&mut self, pkt: &SentPacket) {
        let Some(open) = self.pending.back_mut() else {
            return;
        };
        debug_assert!(
            open.end.is_none(),
            "the newest pending MI must be open: start_mi only closes an MI \
             by starting its successor"
        );
        open.bytes_sent += pkt.bytes;
        open.pkts_sent += 1;
        open.outstanding += 1;
        self.seq_to_mi.insert(pkt.seq, open.id);
    }

    /// Direct-index access to a pending MI by id (ids are sequential and the
    /// queue is contiguous in id, see [`MiTracker::pending`]).
    fn mi_mut(&mut self, id: MiId) -> Option<&mut MiState> {
        let front_id = self.pending.front()?.id;
        let idx = id.checked_sub(front_id)? as usize;
        let mi = self.pending.get_mut(idx)?;
        debug_assert_eq!(mi.id, id, "pending ids must be contiguous");
        Some(mi)
    }

    /// Processes an ACK, appending MIs it completed to `out` in id order.
    pub fn on_ack_into(&mut self, ack: &AckInfo, out: &mut Vec<MiStats>) {
        self.on_ack_filtered_into(ack, true, out);
    }

    /// Like [`MiTracker::on_ack_into`], but when `keep_rtt` is `false` the
    /// ACK counts for throughput/completion while its RTT sample is excluded
    /// from the latency metrics (used by Proteus' per-ACK noise filter, §5).
    pub fn on_ack_filtered_into(&mut self, ack: &AckInfo, keep_rtt: bool, out: &mut Vec<MiStats>) {
        let Some(mi_id) = self.seq_to_mi.remove(ack.seq) else {
            return;
        };
        if let Some(mi) = self.mi_mut(mi_id) {
            mi.bytes_acked += ack.bytes;
            mi.pkts_acked += 1;
            mi.outstanding = mi.outstanding.saturating_sub(1);
            if keep_rtt {
                let rel_send = ack.sent_at.since(mi.start).as_secs_f64();
                let rtt_s = ack.rtt.as_secs_f64();
                mi.reg.add(rel_send, rtt_s);
                mi.rtt_acc.add(rtt_s);
            }
        }
        self.drain_complete_into(out);
    }

    /// Processes a loss, appending MIs it completed to `out` in id order.
    pub fn on_loss_into(&mut self, loss: &LossInfo, out: &mut Vec<MiStats>) {
        let Some(mi_id) = self.seq_to_mi.remove(loss.seq) else {
            return;
        };
        if let Some(mi) = self.mi_mut(mi_id) {
            mi.bytes_lost += loss.bytes;
            mi.pkts_lost += 1;
            mi.outstanding = mi.outstanding.saturating_sub(1);
        }
        self.drain_complete_into(out);
    }

    fn drain_complete_into(&mut self, out: &mut Vec<MiStats>) {
        while let Some(front) = self.pending.front() {
            if front.is_complete() {
                let mi = self.pending.pop_front().expect("front exists");
                out.push(mi.finish());
            } else {
                break;
            }
        }
    }
}

impl std::fmt::Debug for MiTracker {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MiTracker")
            .field("next_id", &self.next_id)
            .field("pending", &self.pending)
            .field("outstanding_pkts", &self.seq_to_mi.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::DEFAULT_PACKET_BYTES;

    fn pkt(seq: SeqNr, at_ms: u64) -> SentPacket {
        SentPacket {
            seq,
            bytes: DEFAULT_PACKET_BYTES,
            sent_at: Time::from_millis(at_ms),
        }
    }

    fn ack(seq: SeqNr, sent_ms: u64, rtt_ms: u64) -> AckInfo {
        AckInfo {
            seq,
            bytes: DEFAULT_PACKET_BYTES,
            sent_at: Time::from_millis(sent_ms),
            recv_at: Time::from_millis(sent_ms + rtt_ms),
            rtt: Dur::from_millis(rtt_ms),
            one_way_delay: Dur::from_millis(rtt_ms / 2),
        }
    }

    fn loss(seq: SeqNr, sent_ms: u64) -> LossInfo {
        LossInfo {
            seq,
            bytes: DEFAULT_PACKET_BYTES,
            sent_at: Time::from_millis(sent_ms),
            detected_at: Time::from_millis(sent_ms + 100),
            by_timeout: false,
        }
    }

    /// Test shim for the drain-buffer API: one event, fresh buffer.
    fn on_ack(t: &mut MiTracker, a: &AckInfo) -> Vec<MiStats> {
        let mut out = Vec::new();
        t.on_ack_into(a, &mut out);
        out
    }

    fn on_ack_filtered(t: &mut MiTracker, a: &AckInfo, keep_rtt: bool) -> Vec<MiStats> {
        let mut out = Vec::new();
        t.on_ack_filtered_into(a, keep_rtt, &mut out);
        out
    }

    fn on_loss(t: &mut MiTracker, l: &LossInfo) -> Vec<MiStats> {
        let mut out = Vec::new();
        t.on_loss_into(l, &mut out);
        out
    }

    #[test]
    fn mi_completes_when_all_packets_resolve() {
        let mut t = MiTracker::new();
        t.start_mi(Time::ZERO, 1e6);
        t.on_sent(&pkt(0, 0));
        t.on_sent(&pkt(1, 10));
        t.start_mi(Time::from_millis(30), 1e6); // close first MI
        assert!(on_ack(&mut t, &ack(0, 0, 30)).is_empty());
        let done = on_ack(&mut t, &ack(1, 10, 30));
        assert_eq!(done.len(), 1);
        let mi = &done[0];
        assert_eq!(mi.pkts_sent, 2);
        assert_eq!(mi.pkts_acked, 2);
        assert_eq!(mi.pkts_lost, 0);
        assert_eq!(mi.bytes_acked, 2 * DEFAULT_PACKET_BYTES);
        assert_eq!(mi.rtt_samples, 2);
        assert!((mi.rtt_mean - 0.030).abs() < 1e-9);
        assert_eq!(mi.loss_rate, 0.0);
        // 3000 bytes over 30 ms = 100 KB/s
        assert!((mi.throughput - 100_000.0).abs() < 1.0);
    }

    #[test]
    fn loss_counts_and_completes() {
        let mut t = MiTracker::new();
        t.start_mi(Time::ZERO, 1e6);
        t.on_sent(&pkt(0, 0));
        t.on_sent(&pkt(1, 5));
        t.start_mi(Time::from_millis(30), 1e6);
        on_ack(&mut t, &ack(0, 0, 30));
        let done = on_loss(&mut t, &loss(1, 5));
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].pkts_lost, 1);
        assert!((done[0].loss_rate - 0.5).abs() < 1e-12);
    }

    #[test]
    fn completion_emitted_in_order() {
        let mut t = MiTracker::new();
        t.start_mi(Time::ZERO, 1e6);
        t.on_sent(&pkt(0, 0));
        t.start_mi(Time::from_millis(30), 2e6);
        t.on_sent(&pkt(1, 30));
        t.start_mi(Time::from_millis(60), 1e6);
        // Second MI's packet resolves first: nothing emitted until MI 0 done.
        assert!(on_ack(&mut t, &ack(1, 30, 20)).is_empty());
        let done = on_ack(&mut t, &ack(0, 0, 90));
        assert_eq!(done.len(), 2);
        assert_eq!(done[0].id, 0);
        assert_eq!(done[1].id, 1);
        assert_eq!(done[1].target_rate, 2e6);
    }

    #[test]
    fn gradient_reflects_rising_rtt() {
        let mut t = MiTracker::new();
        t.start_mi(Time::ZERO, 1e6);
        // RTT rises 1 ms per 10 ms of send time => gradient 0.1 s/s.
        for i in 0..10u64 {
            t.on_sent(&pkt(i, i * 10));
        }
        t.start_mi(Time::from_millis(100), 1e6);
        let mut done = Vec::new();
        for i in 0..10u64 {
            t.on_ack_into(&ack(i, i * 10, 30 + i), &mut done);
        }
        assert_eq!(done.len(), 1);
        let mi = &done[0];
        assert!((mi.rtt_gradient - 0.1).abs() < 1e-6, "{}", mi.rtt_gradient);
        assert!(mi.gradient_error < 1e-6);
        assert!(mi.rtt_dev > 0.0);
        assert!((mi.rtt_min - 0.030).abs() < 1e-9);
        assert!((mi.rtt_max - 0.039).abs() < 1e-9);
    }

    #[test]
    fn unknown_seq_is_ignored() {
        let mut t = MiTracker::new();
        t.start_mi(Time::ZERO, 1e6);
        assert!(on_ack(&mut t, &ack(99, 0, 30)).is_empty());
        assert!(on_loss(&mut t, &loss(42, 0)).is_empty());
    }

    #[test]
    fn packets_without_open_mi_are_ignored() {
        let mut t = MiTracker::new();
        t.on_sent(&pkt(0, 0)); // no MI yet
        t.start_mi(Time::ZERO, 1e6);
        t.on_sent(&pkt(1, 1));
        t.start_mi(Time::from_millis(10), 1e6);
        let done = on_ack(&mut t, &ack(1, 1, 10));
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].pkts_sent, 1);
    }

    /// The `on_sent` invariant (see its docs): between two `start_mi` calls
    /// there is always exactly one open MI, so every packet sent in that
    /// window is accounted against it — none fall into a "closed gap".
    #[test]
    fn every_sent_packet_between_mis_is_accounted() {
        let mut t = MiTracker::new();
        let mut sent_total = 0u64;
        let mut seq = 0u64;
        for round in 0..5u64 {
            t.start_mi(Time::from_millis(round * 30), 1e6);
            for _ in 0..=round {
                t.on_sent(&pkt(seq, round * 30 + 1));
                seq += 1;
                sent_total += 1;
            }
        }
        t.start_mi(Time::from_millis(150), 1e6);
        let mut done = Vec::new();
        for s in 0..seq {
            t.on_ack_into(&ack(s, 0, 30), &mut done);
        }
        let accounted: u64 = done.iter().map(|mi| mi.pkts_sent).sum();
        assert_eq!(done.len(), 5);
        assert_eq!(accounted, sent_total, "a sent packet was silently dropped");
    }

    #[test]
    fn rtt_filter_excludes_samples_but_keeps_throughput() {
        let mut t = MiTracker::new();
        t.start_mi(Time::ZERO, 1e6);
        t.on_sent(&pkt(0, 0));
        t.on_sent(&pkt(1, 5));
        t.start_mi(Time::from_millis(30), 1e6);
        on_ack_filtered(&mut t, &ack(0, 0, 30), true);
        let done = on_ack_filtered(&mut t, &ack(1, 5, 500), false); // filtered out
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].pkts_acked, 2);
        assert_eq!(done[0].rtt_samples, 1);
    }

    #[test]
    fn empty_mi_finishes_with_zero_metrics() {
        let mut t = MiTracker::new();
        t.start_mi(Time::ZERO, 1e6);
        t.start_mi(Time::from_millis(10), 2e6);
        // The empty MI completes as soon as any event drains the queue; use a
        // packet in the second MI.
        t.on_sent(&pkt(0, 10));
        t.start_mi(Time::from_millis(20), 1e6);
        let done = on_ack(&mut t, &ack(0, 10, 10));
        assert_eq!(done.len(), 2);
        assert_eq!(done[0].pkts_sent, 0);
        assert_eq!(done[0].throughput, 0.0);
        assert_eq!(done[0].rtt_dev, 0.0);
    }

    /// The drain buffer is append-only: the tracker never clears it, so a
    /// caller can batch multiple events into one reusable scratch `Vec`.
    #[test]
    fn drain_buffer_appends_across_events() {
        let mut t = MiTracker::new();
        t.start_mi(Time::ZERO, 1e6);
        t.on_sent(&pkt(0, 0));
        t.start_mi(Time::from_millis(30), 1e6);
        t.on_sent(&pkt(1, 30));
        t.start_mi(Time::from_millis(60), 1e6);
        let mut out = Vec::new();
        t.on_ack_into(&ack(0, 0, 30), &mut out);
        t.on_ack_into(&ack(1, 30, 30), &mut out);
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].id, 0);
        assert_eq!(out[1].id, 1);
    }

    /// The attribution ring tolerates the same edge cases as the HashMap it
    /// replaced: gaps from un-attributed packets, duplicate ACKs, and
    /// out-of-range sequence numbers.
    #[test]
    fn attribution_ring_edge_cases() {
        let mut t = MiTracker::new();
        t.start_mi(Time::ZERO, 1e6);
        t.on_sent(&pkt(3, 0)); // ring anchors at 3
        t.on_sent(&pkt(7, 1)); // gap 4..=6 left unattributed
        t.start_mi(Time::from_millis(30), 1e6);
        assert!(on_ack(&mut t, &ack(5, 0, 30)).is_empty(), "gap seq misses");
        assert!(on_ack(&mut t, &ack(2, 0, 30)).is_empty(), "below head");
        assert!(on_ack(&mut t, &ack(9, 0, 30)).is_empty(), "beyond tail");
        assert!(on_ack(&mut t, &ack(3, 0, 30)).is_empty());
        assert!(on_ack(&mut t, &ack(3, 0, 30)).is_empty(), "duplicate ACK");
        let done = on_ack(&mut t, &ack(7, 1, 30));
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].pkts_acked, 2);
    }
}
