//! Empirical cumulative distribution functions.

/// An empirical CDF built from a set of samples.
///
/// Figures 8–10 and 11(b) of the paper present CDFs of throughput ratios and
/// page-load times; the experiment harness collects the raw samples and
/// renders them through this type.
#[derive(Debug, Clone)]
pub struct Ecdf {
    sorted: Vec<f64>,
}

impl Ecdf {
    /// Builds an ECDF from samples. Non-finite samples are dropped.
    pub fn new(samples: impl IntoIterator<Item = f64>) -> Self {
        let mut sorted: Vec<f64> = samples.into_iter().filter(|x| x.is_finite()).collect();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        Self { sorted }
    }

    /// Number of retained samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Whether the ECDF holds no samples.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// `P(X <= x)`; 0 for an empty ECDF.
    pub fn eval(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let count = self.sorted.partition_point(|&s| s <= x);
        count as f64 / self.sorted.len() as f64
    }

    /// Inverse CDF by nearest rank: the smallest sample `v` with
    /// `P(X <= v) >= q`, `q` in `[0, 1]`. `None` when empty.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.sorted.is_empty() {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        if q == 0.0 {
            return self.sorted.first().copied();
        }
        let rank = (q * self.sorted.len() as f64).ceil() as usize;
        let idx = rank.saturating_sub(1).min(self.sorted.len() - 1);
        Some(self.sorted[idx])
    }

    /// Median sample.
    pub fn median(&self) -> Option<f64> {
        self.quantile(0.5)
    }

    /// Mean of the samples.
    pub fn mean(&self) -> Option<f64> {
        if self.sorted.is_empty() {
            None
        } else {
            Some(self.sorted.iter().sum::<f64>() / self.sorted.len() as f64)
        }
    }

    /// The underlying sorted samples.
    pub fn samples(&self) -> &[f64] {
        &self.sorted
    }

    /// The full `(value, cumulative_fraction)` step series for plotting.
    pub fn series(&self) -> Vec<(f64, f64)> {
        let n = self.sorted.len() as f64;
        self.sorted
            .iter()
            .enumerate()
            .map(|(i, &v)| (v, (i + 1) as f64 / n))
            .collect()
    }

    /// Fraction of samples at or above `x` (e.g. "fraction of cases where
    /// the primary kept ≥ 90 % of its throughput", §6.2.1).
    pub fn fraction_at_least(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let below = self.sorted.partition_point(|&s| s < x);
        (self.sorted.len() - below) as f64 / self.sorted.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_counts_inclusive() {
        let e = Ecdf::new([1.0, 2.0, 3.0, 4.0]);
        assert_eq!(e.eval(0.5), 0.0);
        assert_eq!(e.eval(1.0), 0.25);
        assert_eq!(e.eval(2.5), 0.5);
        assert_eq!(e.eval(4.0), 1.0);
        assert_eq!(e.eval(100.0), 1.0);
    }

    #[test]
    fn quantiles_nearest_rank() {
        let e = Ecdf::new([10.0, 20.0, 30.0, 40.0, 50.0]);
        assert_eq!(e.quantile(0.0), Some(10.0));
        assert_eq!(e.quantile(0.2), Some(10.0));
        assert_eq!(e.quantile(0.21), Some(20.0));
        assert_eq!(e.median(), Some(30.0));
        assert_eq!(e.quantile(1.0), Some(50.0));
    }

    #[test]
    fn empty_behaviour() {
        let e = Ecdf::new(std::iter::empty());
        assert!(e.is_empty());
        assert_eq!(e.eval(1.0), 0.0);
        assert_eq!(e.quantile(0.5), None);
        assert_eq!(e.mean(), None);
        assert_eq!(e.fraction_at_least(0.0), 0.0);
    }

    #[test]
    fn drops_non_finite() {
        let e = Ecdf::new([1.0, f64::NAN, 2.0, f64::INFINITY]);
        assert_eq!(e.len(), 2);
    }

    #[test]
    fn series_is_monotone_step() {
        let e = Ecdf::new([3.0, 1.0, 2.0]);
        let s = e.series();
        assert_eq!(s[0], (1.0, 1.0 / 3.0));
        assert_eq!(s[2], (3.0, 1.0));
        assert!(s.windows(2).all(|w| w[0].0 <= w[1].0 && w[0].1 <= w[1].1));
    }

    #[test]
    fn fraction_at_least_counts_inclusive() {
        let e = Ecdf::new([0.5, 0.9, 0.92, 1.0]);
        assert_eq!(e.fraction_at_least(0.9), 0.75);
        assert_eq!(e.fraction_at_least(0.91), 0.5);
        assert_eq!(e.fraction_at_least(2.0), 0.0);
    }

    #[test]
    fn mean_matches() {
        let e = Ecdf::new([1.0, 2.0, 3.0]);
        assert!((e.mean().unwrap() - 2.0).abs() < 1e-12);
    }
}
