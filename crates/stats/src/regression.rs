//! Ordinary least-squares linear regression with residual error.
//!
//! PCC Vivace and Proteus compute the **RTT gradient** of a monitor interval
//! as the least-squares slope of RTT against packet send time, and Proteus'
//! per-MI noise gate (§5, "Regression Error Tolerance") compares that slope
//! against the normalized RMS residual of the same fit. Both come from this
//! module.

/// Result of a least-squares fit `y ≈ intercept + slope · x`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinearRegression {
    /// Fitted slope.
    pub slope: f64,
    /// Fitted intercept.
    pub intercept: f64,
    /// Root-mean-square residual `sqrt(Σ(y_i − ŷ_i)² / n)`.
    pub rms_residual: f64,
    /// Number of points fitted.
    pub n: usize,
}

impl LinearRegression {
    /// Fits `(x, y)` pairs. Returns `None` with fewer than two points or when
    /// all `x` coincide (the slope is undefined).
    pub fn fit(points: &[(f64, f64)]) -> Option<Self> {
        let n = points.len();
        if n < 2 {
            return None;
        }
        let nf = n as f64;
        let mean_x = points.iter().map(|p| p.0).sum::<f64>() / nf;
        let mean_y = points.iter().map(|p| p.1).sum::<f64>() / nf;
        let mut sxx = 0.0;
        let mut sxy = 0.0;
        for &(x, y) in points {
            let dx = x - mean_x;
            sxx += dx * dx;
            sxy += dx * (y - mean_y);
        }
        if sxx == 0.0 {
            return None;
        }
        let slope = sxy / sxx;
        let intercept = mean_y - slope * mean_x;
        let mut ss_res = 0.0;
        for &(x, y) in points {
            let err = y - (intercept + slope * x);
            ss_res += err * err;
        }
        Some(Self {
            slope,
            intercept,
            rms_residual: (ss_res / nf).sqrt(),
            n,
        })
    }

    /// Predicted `y` at `x`.
    pub fn predict(&self, x: f64) -> f64 {
        self.intercept + self.slope * x
    }
}

/// Streaming (single-pass) least-squares accumulator: the O(1)-per-sample,
/// O(1)-finish counterpart of [`LinearRegression::fit`].
///
/// The monitor-interval pipeline feeds one `(send_time, RTT)` pair per ACK;
/// storing them and running the two-pass fit at MI close made closing an MI
/// O(n) and kept a growable `Vec` in every MI. This accumulator instead
/// maintains running sums of the coordinates *relative to the first sample*
/// (for the per-MI use that anchor is the MI start, since send times are
/// already MI-relative): with `dx = x − x₀`, `dy = y − y₀` it tracks
/// `Σdx, Σdy, Σdx², Σdx·dy, Σdy²`, from which slope, intercept and RMS
/// residual follow in closed form. Anchoring keeps the magnitudes of the
/// summed terms proportional to the *spread* of the data rather than its
/// offset, so the classic catastrophic cancellation of textbook
/// `Σx² − (Σx)²/n` at large offsets (e.g. absolute timestamps) does not
/// occur.
///
/// Numerics: the result is algebraically identical to
/// [`LinearRegression::fit`] but not bit-identical — the summation order
/// differs, so slope/intercept/residual agree only to floating-point
/// accuracy (relative error ~1e-12 on well-conditioned inputs; see the
/// property tests in `crates/stats/tests/streaming_regression.rs` and
/// DESIGN.md §4d for the documented tolerance).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RegressionAccumulator {
    n: u64,
    /// Anchor point: the first sample. All sums are of offsets from it.
    x0: f64,
    y0: f64,
    sum_dx: f64,
    sum_dy: f64,
    sum_dxdx: f64,
    sum_dxdy: f64,
    sum_dydy: f64,
}

impl RegressionAccumulator {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of samples seen so far.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Whether no samples have been added.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Adds one `(x, y)` sample. O(1), no allocation.
    pub fn add(&mut self, x: f64, y: f64) {
        if self.n == 0 {
            self.x0 = x;
            self.y0 = y;
        }
        self.n += 1;
        let dx = x - self.x0;
        let dy = y - self.y0;
        self.sum_dx += dx;
        self.sum_dy += dy;
        self.sum_dxdx += dx * dx;
        self.sum_dxdy += dx * dy;
        self.sum_dydy += dy * dy;
    }

    /// Finishes the fit. Returns `None` with fewer than two samples or when
    /// all `x` coincide, exactly like [`LinearRegression::fit`]. O(1).
    pub fn fit(&self) -> Option<LinearRegression> {
        if self.n < 2 {
            return None;
        }
        let nf = self.n as f64;
        // Centered second moments of the anchored offsets. When every x is
        // bit-identical, dx is exactly 0 for all samples and sxx is exactly
        // 0; rounding can otherwise leave sxx a hair negative, which the
        // `> 0` guard also rejects (the data is degenerate to within noise).
        let sxx = self.sum_dxdx - self.sum_dx * self.sum_dx / nf;
        if sxx.is_nan() || sxx <= 0.0 {
            return None;
        }
        let sxy = self.sum_dxdy - self.sum_dx * self.sum_dy / nf;
        let syy = self.sum_dydy - self.sum_dy * self.sum_dy / nf;
        let slope = sxy / sxx;
        // Back to absolute coordinates: means are anchor + mean offset.
        let mean_x = self.x0 + self.sum_dx / nf;
        let mean_y = self.y0 + self.sum_dy / nf;
        // Σ residual² = syy − slope·sxy; clamp the cancellation tail.
        let ss_res = (syy - slope * sxy).max(0.0);
        Some(LinearRegression {
            slope,
            intercept: mean_y - slope * mean_x,
            rms_residual: (ss_res / nf).sqrt(),
            n: self.n as usize,
        })
    }

    /// Resets the accumulator to its empty state.
    pub fn reset(&mut self) {
        *self = Self::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_line_has_zero_residual() {
        let pts: Vec<(f64, f64)> = (0..10).map(|i| (i as f64, 2.0 + 3.0 * i as f64)).collect();
        let fit = LinearRegression::fit(&pts).unwrap();
        assert!((fit.slope - 3.0).abs() < 1e-12);
        assert!((fit.intercept - 2.0).abs() < 1e-12);
        assert!(fit.rms_residual < 1e-9);
        assert_eq!(fit.n, 10);
    }

    #[test]
    fn flat_line() {
        let pts: Vec<(f64, f64)> = (0..5).map(|i| (i as f64, 7.0)).collect();
        let fit = LinearRegression::fit(&pts).unwrap();
        assert!(fit.slope.abs() < 1e-12);
        assert!((fit.intercept - 7.0).abs() < 1e-12);
    }

    #[test]
    fn degenerate_cases() {
        assert!(LinearRegression::fit(&[]).is_none());
        assert!(LinearRegression::fit(&[(1.0, 2.0)]).is_none());
        // All x equal: vertical line, undefined slope.
        assert!(LinearRegression::fit(&[(1.0, 2.0), (1.0, 3.0)]).is_none());
    }

    #[test]
    fn residual_reflects_noise() {
        // y = x with alternating ±1 noise.
        let pts: Vec<(f64, f64)> = (0..20)
            .map(|i| {
                let x = i as f64;
                (x, x + if i % 2 == 0 { 1.0 } else { -1.0 })
            })
            .collect();
        let fit = LinearRegression::fit(&pts).unwrap();
        assert!((fit.slope - 1.0).abs() < 0.05);
        assert!(fit.rms_residual > 0.9 && fit.rms_residual < 1.1);
    }

    #[test]
    fn predict_interpolates() {
        let fit = LinearRegression::fit(&[(0.0, 1.0), (2.0, 5.0)]).unwrap();
        assert!((fit.predict(1.0) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn negative_slope() {
        let pts: Vec<(f64, f64)> = (0..8).map(|i| (i as f64, 10.0 - 0.5 * i as f64)).collect();
        let fit = LinearRegression::fit(&pts).unwrap();
        assert!((fit.slope + 0.5).abs() < 1e-12);
    }
}
