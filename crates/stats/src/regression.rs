//! Ordinary least-squares linear regression with residual error.
//!
//! PCC Vivace and Proteus compute the **RTT gradient** of a monitor interval
//! as the least-squares slope of RTT against packet send time, and Proteus'
//! per-MI noise gate (§5, "Regression Error Tolerance") compares that slope
//! against the normalized RMS residual of the same fit. Both come from this
//! module.

/// Result of a least-squares fit `y ≈ intercept + slope · x`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinearRegression {
    /// Fitted slope.
    pub slope: f64,
    /// Fitted intercept.
    pub intercept: f64,
    /// Root-mean-square residual `sqrt(Σ(y_i − ŷ_i)² / n)`.
    pub rms_residual: f64,
    /// Number of points fitted.
    pub n: usize,
}

impl LinearRegression {
    /// Fits `(x, y)` pairs. Returns `None` with fewer than two points or when
    /// all `x` coincide (the slope is undefined).
    pub fn fit(points: &[(f64, f64)]) -> Option<Self> {
        let n = points.len();
        if n < 2 {
            return None;
        }
        let nf = n as f64;
        let mean_x = points.iter().map(|p| p.0).sum::<f64>() / nf;
        let mean_y = points.iter().map(|p| p.1).sum::<f64>() / nf;
        let mut sxx = 0.0;
        let mut sxy = 0.0;
        for &(x, y) in points {
            let dx = x - mean_x;
            sxx += dx * dx;
            sxy += dx * (y - mean_y);
        }
        if sxx == 0.0 {
            return None;
        }
        let slope = sxy / sxx;
        let intercept = mean_y - slope * mean_x;
        let mut ss_res = 0.0;
        for &(x, y) in points {
            let err = y - (intercept + slope * x);
            ss_res += err * err;
        }
        Some(Self {
            slope,
            intercept,
            rms_residual: (ss_res / nf).sqrt(),
            n,
        })
    }

    /// Predicted `y` at `x`.
    pub fn predict(&self, x: f64) -> f64 {
        self.intercept + self.slope * x
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_line_has_zero_residual() {
        let pts: Vec<(f64, f64)> = (0..10).map(|i| (i as f64, 2.0 + 3.0 * i as f64)).collect();
        let fit = LinearRegression::fit(&pts).unwrap();
        assert!((fit.slope - 3.0).abs() < 1e-12);
        assert!((fit.intercept - 2.0).abs() < 1e-12);
        assert!(fit.rms_residual < 1e-9);
        assert_eq!(fit.n, 10);
    }

    #[test]
    fn flat_line() {
        let pts: Vec<(f64, f64)> = (0..5).map(|i| (i as f64, 7.0)).collect();
        let fit = LinearRegression::fit(&pts).unwrap();
        assert!(fit.slope.abs() < 1e-12);
        assert!((fit.intercept - 7.0).abs() < 1e-12);
    }

    #[test]
    fn degenerate_cases() {
        assert!(LinearRegression::fit(&[]).is_none());
        assert!(LinearRegression::fit(&[(1.0, 2.0)]).is_none());
        // All x equal: vertical line, undefined slope.
        assert!(LinearRegression::fit(&[(1.0, 2.0), (1.0, 3.0)]).is_none());
    }

    #[test]
    fn residual_reflects_noise() {
        // y = x with alternating ±1 noise.
        let pts: Vec<(f64, f64)> = (0..20)
            .map(|i| {
                let x = i as f64;
                (x, x + if i % 2 == 0 { 1.0 } else { -1.0 })
            })
            .collect();
        let fit = LinearRegression::fit(&pts).unwrap();
        assert!((fit.slope - 1.0).abs() < 0.05);
        assert!(fit.rms_residual > 0.9 && fit.rms_residual < 1.1);
    }

    #[test]
    fn predict_interpolates() {
        let fit = LinearRegression::fit(&[(0.0, 1.0), (2.0, 5.0)]).unwrap();
        assert!((fit.predict(1.0) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn negative_slope() {
        let pts: Vec<(f64, f64)> = (0..8).map(|i| (i as f64, 10.0 - 0.5 * i as f64)).collect();
        let fit = LinearRegression::fit(&pts).unwrap();
        assert!((fit.slope + 0.5).abs() < 1e-12);
    }
}
