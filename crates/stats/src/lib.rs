//! Numeric substrate shared by the PCC Proteus reproduction.
//!
//! This crate collects the small, well-tested statistical primitives that the
//! transport layer, the simulator and the experiment harness all rely on:
//!
//! * [`Welford`] — numerically stable online mean / variance,
//! * [`Histogram`] — fixed-bin histograms and empirical PDFs (Fig. 2),
//! * [`Ecdf`] — empirical CDFs (Figs. 8–10),
//! * [`percentile`] — nearest-rank percentiles (95th-RTT metrics),
//! * [`jain_index`] — Jain's fairness index (Fig. 5),
//! * [`LinearRegression`] — least-squares slope + residual, the exact
//!   computation Proteus uses for RTT gradient and regression-error
//!   tolerance (§5),
//! * [`RegressionAccumulator`] — the streaming O(1)-per-sample form of the
//!   same fit, used on the per-ACK hot path,
//! * [`Ewma`] / [`MeanDeviationTracker`] — exponentially weighted moving
//!   average and Linux-kernel-style mean-deviation tracking used by the
//!   trending-tolerance gates (§5).
//!
//! Everything here is deterministic and allocation-light so it can run inside
//! the per-ACK hot path of the simulator.
//!
//! ```
//! use proteus_stats::{jain_index, LinearRegression, Welford};
//!
//! // σ(RTT): the scavenger's competition signal.
//! let mut acc = Welford::new();
//! for rtt_ms in [30.0, 31.5, 30.2, 33.0] {
//!     acc.add(rtt_ms);
//! }
//! assert!(acc.std_dev() > 1.0);
//!
//! // RTT gradient: least-squares slope of RTT vs. send time.
//! let fit = LinearRegression::fit(&[(0.0, 30.0), (1.0, 31.0), (2.0, 32.0)]).unwrap();
//! assert!((fit.slope - 1.0).abs() < 1e-9);
//!
//! // Fairness (Fig. 5).
//! assert!(jain_index(&[25.0, 25.0]).unwrap() > 0.999);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod cdf;
mod ewma;
mod histogram;
mod jain;
mod percentile;
mod regression;
mod summary;
mod welford;

pub use cdf::Ecdf;
pub use ewma::{Ewma, MeanDeviationTracker};
pub use histogram::Histogram;
pub use jain::jain_index;
pub use percentile::{median, percentile, percentile_sorted};
pub use regression::{LinearRegression, RegressionAccumulator};
pub use summary::Summary;
pub use welford::Welford;
