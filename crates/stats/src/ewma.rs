//! Exponentially weighted moving averages and mean-deviation tracking.

/// A classic exponentially weighted moving average with smoothing factor
/// `alpha` (weight of the new sample).
#[derive(Debug, Clone, Copy)]
pub struct Ewma {
    alpha: f64,
    value: Option<f64>,
}

impl Ewma {
    /// Creates an EWMA with the given smoothing factor in `(0, 1]`.
    ///
    /// # Panics
    /// Panics if `alpha` is outside `(0, 1]`.
    pub fn new(alpha: f64) -> Self {
        assert!(alpha > 0.0 && alpha <= 1.0, "alpha must be in (0, 1]");
        Self { alpha, value: None }
    }

    /// Feeds a sample; the first sample initializes the average.
    pub fn update(&mut self, x: f64) -> f64 {
        let v = match self.value {
            None => x,
            Some(v) => v + self.alpha * (x - v),
        };
        self.value = Some(v);
        v
    }

    /// Current average, if any sample has been observed.
    pub fn get(&self) -> Option<f64> {
        self.value
    }

    /// Current average or the provided default.
    pub fn get_or(&self, default: f64) -> f64 {
        self.value.unwrap_or(default)
    }

    /// Clears the average.
    pub fn reset(&mut self) {
        self.value = None;
    }
}

/// Tracks a smoothed mean and smoothed mean absolute deviation of a signal,
/// in the style of the Linux kernel's `srtt`/`rttvar` estimator.
///
/// The trending-tolerance mechanism of §5 keeps exactly this state for the
/// *trending gradient* and *trending deviation* signals: each fresh sample is
/// compared against `avg ± G·dev` to decide whether it is statistically
/// distinguishable from noise.
#[derive(Debug, Clone, Copy)]
pub struct MeanDeviationTracker {
    avg: Ewma,
    dev: Ewma,
}

impl MeanDeviationTracker {
    /// Creates a tracker with separate smoothing factors for the mean and the
    /// deviation (the kernel uses 1/8 and 1/4).
    pub fn new(alpha_avg: f64, alpha_dev: f64) -> Self {
        Self {
            avg: Ewma::new(alpha_avg),
            dev: Ewma::new(alpha_dev),
        }
    }

    /// Creates a tracker with the Linux kernel's 1/8, 1/4 gains.
    pub fn kernel_style() -> Self {
        Self::new(1.0 / 8.0, 1.0 / 4.0)
    }

    /// Feeds a sample, updating both the smoothed mean and deviation.
    pub fn update(&mut self, x: f64) {
        let prev_avg = self.avg.get();
        self.avg.update(x);
        match prev_avg {
            None => {
                // First sample: deviation starts at half the magnitude, like
                // the kernel initializes rttvar to rtt/2.
                self.dev.update(x.abs() / 2.0);
            }
            Some(avg) => {
                self.dev.update((x - avg).abs());
            }
        }
    }

    /// Smoothed mean, if initialized.
    pub fn avg(&self) -> Option<f64> {
        self.avg.get()
    }

    /// Smoothed mean absolute deviation, if initialized.
    pub fn dev(&self) -> Option<f64> {
        self.dev.get()
    }

    /// Whether `x` lies within `avg ± gain·dev`. Returns `false` before any
    /// sample has been observed (nothing to compare against), so the first
    /// samples are treated as significant.
    pub fn within_band(&self, x: f64, gain: f64) -> bool {
        match (self.avg.get(), self.dev.get()) {
            (Some(avg), Some(dev)) => (x - avg).abs() < gain * dev,
            _ => false,
        }
    }

    /// One-sided variant: whether `x - avg < gain·dev` (used for the
    /// trending-deviation gate, which only ignores *small* deviations).
    pub fn below_band(&self, x: f64, gain: f64) -> bool {
        match (self.avg.get(), self.dev.get()) {
            (Some(avg), Some(dev)) => x - avg < gain * dev,
            _ => false,
        }
    }

    /// Clears all state.
    pub fn reset(&mut self) {
        self.avg.reset();
        self.dev.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_sample_initializes() {
        let mut e = Ewma::new(0.5);
        assert_eq!(e.get(), None);
        assert_eq!(e.update(10.0), 10.0);
        assert_eq!(e.get(), Some(10.0));
    }

    #[test]
    fn converges_to_constant_signal() {
        let mut e = Ewma::new(0.25);
        for _ in 0..100 {
            e.update(5.0);
        }
        assert!((e.get().unwrap() - 5.0).abs() < 1e-9);
    }

    #[test]
    fn alpha_one_tracks_exactly() {
        let mut e = Ewma::new(1.0);
        e.update(1.0);
        e.update(9.0);
        assert_eq!(e.get(), Some(9.0));
    }

    #[test]
    #[should_panic]
    fn zero_alpha_panics() {
        let _ = Ewma::new(0.0);
    }

    #[test]
    fn tracker_constant_signal_dev_decays() {
        let mut t = MeanDeviationTracker::kernel_style();
        for _ in 0..200 {
            t.update(30.0);
        }
        assert!((t.avg().unwrap() - 30.0).abs() < 1e-6);
        assert!(t.dev().unwrap() < 0.1);
    }

    #[test]
    fn tracker_noisy_signal_has_positive_dev() {
        let mut t = MeanDeviationTracker::kernel_style();
        for i in 0..200 {
            t.update(if i % 2 == 0 { 28.0 } else { 32.0 });
        }
        let dev = t.dev().unwrap();
        assert!(dev > 1.0 && dev < 5.0, "dev = {dev}");
    }

    #[test]
    fn within_band_logic() {
        let mut t = MeanDeviationTracker::kernel_style();
        assert!(!t.within_band(1.0, 2.0));
        for i in 0..100 {
            t.update(10.0 + if i % 2 == 0 { 0.5 } else { -0.5 });
        }
        assert!(t.within_band(10.2, 2.0));
        assert!(!t.within_band(20.0, 2.0));
    }

    #[test]
    fn below_band_is_one_sided() {
        let mut t = MeanDeviationTracker::kernel_style();
        for _ in 0..50 {
            t.update(10.0);
        }
        // Far below the mean is "below band" even though |x-avg| is large.
        assert!(t.below_band(0.0, 1.0));
        assert!(!t.below_band(100.0, 1.0));
    }

    #[test]
    fn reset_clears() {
        let mut t = MeanDeviationTracker::kernel_style();
        t.update(5.0);
        t.reset();
        assert_eq!(t.avg(), None);
        assert_eq!(t.dev(), None);
    }
}
