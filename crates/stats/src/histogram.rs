//! Fixed-bin histograms and empirical PDFs.

/// A fixed-width-bin histogram over a closed range `[lo, hi]`.
///
/// The Fig.-2 experiment of the paper plots the probability density of RTT
/// deviation and |RTT gradient| observed by a fixed-rate probe; this type
/// produces exactly those probability-per-bin series.
#[derive(Debug, Clone)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
    underflow: u64,
    overflow: u64,
    total: u64,
}

impl Histogram {
    /// Creates a histogram with `bins` equal-width bins over `[lo, hi]`.
    ///
    /// # Panics
    /// Panics if `bins == 0` or `hi <= lo` or either bound is non-finite.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins > 0, "histogram needs at least one bin");
        assert!(lo.is_finite() && hi.is_finite(), "bounds must be finite");
        assert!(hi > lo, "hi must exceed lo");
        Self {
            lo,
            hi,
            counts: vec![0; bins],
            underflow: 0,
            overflow: 0,
            total: 0,
        }
    }

    /// Number of bins (excluding under/overflow).
    pub fn bins(&self) -> usize {
        self.counts.len()
    }

    /// Width of each bin.
    pub fn bin_width(&self) -> f64 {
        (self.hi - self.lo) / self.counts.len() as f64
    }

    /// Records a sample. Non-finite samples are ignored. Samples outside the
    /// range are tallied as under/overflow but still count toward the total.
    pub fn add(&mut self, x: f64) {
        if !x.is_finite() {
            return;
        }
        self.total += 1;
        if x < self.lo {
            self.underflow += 1;
        } else if x >= self.hi {
            // The exact upper bound lands in the last bin.
            if x == self.hi {
                *self.counts.last_mut().expect("non-empty") += 1;
            } else {
                self.overflow += 1;
            }
        } else {
            let idx = ((x - self.lo) / self.bin_width()) as usize;
            let idx = idx.min(self.counts.len() - 1);
            self.counts[idx] += 1;
        }
    }

    /// Records many samples.
    pub fn extend<I: IntoIterator<Item = f64>>(&mut self, xs: I) {
        for x in xs {
            self.add(x);
        }
    }

    /// Total samples recorded (including out-of-range).
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Samples below the range.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Samples above the range.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Raw count of bin `i`.
    pub fn count(&self, i: usize) -> u64 {
        self.counts[i]
    }

    /// Center of bin `i`.
    pub fn bin_center(&self, i: usize) -> f64 {
        self.lo + (i as f64 + 0.5) * self.bin_width()
    }

    /// Probability mass of each bin (fraction of total samples).
    ///
    /// Sums to 1 minus the out-of-range fraction. Returns all zeros when
    /// empty.
    pub fn pmf(&self) -> Vec<f64> {
        if self.total == 0 {
            return vec![0.0; self.counts.len()];
        }
        self.counts
            .iter()
            .map(|&c| c as f64 / self.total as f64)
            .collect()
    }

    /// Probability density of each bin (pmf divided by bin width).
    pub fn pdf(&self) -> Vec<f64> {
        let w = self.bin_width();
        self.pmf().into_iter().map(|p| p / w).collect()
    }

    /// `(bin_center, probability)` pairs, the paper's Fig.-2 series.
    pub fn series(&self) -> Vec<(f64, f64)> {
        self.pmf()
            .into_iter()
            .enumerate()
            .map(|(i, p)| (self.bin_center(i), p))
            .collect()
    }

    /// Index of the most populated bin; `None` when empty.
    pub fn mode_bin(&self) -> Option<usize> {
        if self.total == 0 || self.counts.iter().all(|&c| c == 0) {
            return None;
        }
        self.counts
            .iter()
            .enumerate()
            .max_by_key(|(_, &c)| c)
            .map(|(i, _)| i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bins_partition_the_range() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        for i in 0..10 {
            h.add(i as f64 + 0.5);
        }
        for i in 0..10 {
            assert_eq!(h.count(i), 1, "bin {i}");
        }
        assert_eq!(h.total(), 10);
        assert_eq!(h.underflow(), 0);
        assert_eq!(h.overflow(), 0);
    }

    #[test]
    fn boundary_values() {
        let mut h = Histogram::new(0.0, 1.0, 4);
        h.add(0.0); // first bin
        h.add(0.25); // second bin (left-closed bins)
        h.add(1.0); // exact upper bound -> last bin
        assert_eq!(h.count(0), 1);
        assert_eq!(h.count(1), 1);
        assert_eq!(h.count(3), 1);
    }

    #[test]
    fn out_of_range_is_tracked() {
        let mut h = Histogram::new(0.0, 1.0, 2);
        h.add(-0.1);
        h.add(2.0);
        h.add(0.5);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 1);
        assert_eq!(h.total(), 3);
        let pmf = h.pmf();
        assert!((pmf.iter().sum::<f64>() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn nan_is_ignored() {
        let mut h = Histogram::new(0.0, 1.0, 2);
        h.add(f64::NAN);
        h.add(f64::INFINITY);
        assert_eq!(h.total(), 0);
    }

    #[test]
    fn pdf_integrates_to_one() {
        let mut h = Histogram::new(0.0, 2.0, 20);
        for i in 0..1000 {
            h.add((i % 200) as f64 / 100.0);
        }
        let integral: f64 = h.pdf().iter().map(|d| d * h.bin_width()).sum();
        assert!((integral - 1.0).abs() < 1e-9);
    }

    #[test]
    fn mode_bin_finds_the_peak() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        h.extend([1.5, 1.6, 1.7, 5.5]);
        assert_eq!(h.mode_bin(), Some(1));
        let empty = Histogram::new(0.0, 1.0, 3);
        assert_eq!(empty.mode_bin(), None);
    }

    #[test]
    fn series_matches_pmf_and_centers() {
        let mut h = Histogram::new(0.0, 4.0, 4);
        h.extend([0.5, 1.5, 1.6]);
        let s = h.series();
        assert_eq!(s.len(), 4);
        assert!((s[0].0 - 0.5).abs() < 1e-12);
        assert!((s[1].1 - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic]
    fn zero_bins_panics() {
        let _ = Histogram::new(0.0, 1.0, 0);
    }

    #[test]
    #[should_panic]
    fn inverted_range_panics() {
        let _ = Histogram::new(1.0, 0.0, 4);
    }
}
