//! Nearest-rank percentiles over unsorted slices.

/// Returns the `p`-th percentile (0–100) of `xs` by the nearest-rank method,
/// or `None` if `xs` is empty after dropping non-finite values.
///
/// The paper reports 95th-percentile RTT and inflation ratios throughout
/// §6.1–6.2; this helper is what the harness uses for those columns.
pub fn percentile(xs: &[f64], p: f64) -> Option<f64> {
    let mut v: Vec<f64> = xs.iter().copied().filter(|x| x.is_finite()).collect();
    if v.is_empty() {
        return None;
    }
    v.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let p = p.clamp(0.0, 100.0);
    if p == 0.0 {
        return v.first().copied();
    }
    let rank = (p / 100.0 * v.len() as f64).ceil() as usize;
    Some(v[rank.saturating_sub(1).min(v.len() - 1)])
}

/// Median shorthand.
pub fn median(xs: &[f64]) -> Option<f64> {
    percentile(xs, 50.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_percentiles() {
        let xs: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        assert_eq!(percentile(&xs, 95.0), Some(95.0));
        assert_eq!(percentile(&xs, 50.0), Some(50.0));
        assert_eq!(percentile(&xs, 100.0), Some(100.0));
        assert_eq!(percentile(&xs, 0.0), Some(1.0));
    }

    #[test]
    fn unsorted_input() {
        let xs = [5.0, 1.0, 3.0, 2.0, 4.0];
        assert_eq!(median(&xs), Some(3.0));
    }

    #[test]
    fn empty_and_nan() {
        assert_eq!(percentile(&[], 50.0), None);
        assert_eq!(percentile(&[f64::NAN], 50.0), None);
        assert_eq!(percentile(&[f64::NAN, 7.0], 50.0), Some(7.0));
    }

    #[test]
    fn single_element() {
        assert_eq!(percentile(&[42.0], 95.0), Some(42.0));
    }

    #[test]
    fn out_of_range_p_is_clamped() {
        let xs = [1.0, 2.0, 3.0];
        assert_eq!(percentile(&xs, -5.0), Some(1.0));
        assert_eq!(percentile(&xs, 150.0), Some(3.0));
    }
}
