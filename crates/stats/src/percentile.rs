//! Nearest-rank percentiles over unsorted slices.

/// Returns the `p`-th percentile (0–100) of `xs` by the nearest-rank method,
/// or `None` if `xs` is empty after dropping non-finite values.
///
/// The paper reports 95th-percentile RTT and inflation ratios throughout
/// §6.1–6.2; this helper is what the harness uses for those columns.
///
/// Selection-based (`select_nth_unstable_by`): O(n) expected rather than the
/// O(n log n) of a full sort, which matters when the harness sweeps
/// percentiles over every flow of a large campaign.
pub fn percentile(xs: &[f64], p: f64) -> Option<f64> {
    let mut v: Vec<f64> = xs.iter().copied().filter(|x| x.is_finite()).collect();
    if v.is_empty() {
        return None;
    }
    let idx = nearest_rank_index(v.len(), p);
    let (_, val, _) = v.select_nth_unstable_by(idx, |a, b| a.partial_cmp(b).expect("finite"));
    Some(*val)
}

/// Returns the `p`-th percentile of an **ascending-sorted** slice with no
/// non-finite values, in O(1). Callers that cache a sorted sample set (e.g.
/// per-flow RTT metrics) use this to answer repeated percentile queries
/// without re-collecting.
pub fn percentile_sorted(sorted: &[f64], p: f64) -> Option<f64> {
    if sorted.is_empty() {
        return None;
    }
    debug_assert!(sorted.windows(2).all(|w| w[0] <= w[1]), "input not sorted");
    Some(sorted[nearest_rank_index(sorted.len(), p)])
}

/// Nearest-rank index for the `p`-th percentile of `len` samples.
fn nearest_rank_index(len: usize, p: f64) -> usize {
    let p = p.clamp(0.0, 100.0);
    if p == 0.0 {
        return 0;
    }
    let rank = (p / 100.0 * len as f64).ceil() as usize;
    rank.saturating_sub(1).min(len - 1)
}

/// Median shorthand.
pub fn median(xs: &[f64]) -> Option<f64> {
    percentile(xs, 50.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_percentiles() {
        let xs: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        assert_eq!(percentile(&xs, 95.0), Some(95.0));
        assert_eq!(percentile(&xs, 50.0), Some(50.0));
        assert_eq!(percentile(&xs, 100.0), Some(100.0));
        assert_eq!(percentile(&xs, 0.0), Some(1.0));
    }

    #[test]
    fn unsorted_input() {
        let xs = [5.0, 1.0, 3.0, 2.0, 4.0];
        assert_eq!(median(&xs), Some(3.0));
    }

    #[test]
    fn empty_and_nan() {
        assert_eq!(percentile(&[], 50.0), None);
        assert_eq!(percentile(&[f64::NAN], 50.0), None);
        assert_eq!(percentile(&[f64::NAN, 7.0], 50.0), Some(7.0));
    }

    #[test]
    fn all_non_finite_is_none() {
        assert_eq!(
            percentile(&[f64::NAN, f64::INFINITY, f64::NEG_INFINITY], 95.0),
            None
        );
    }

    #[test]
    fn infinities_are_dropped_like_nan() {
        // Non-finite values must not poison selection ordering.
        let xs = [f64::INFINITY, 2.0, f64::NEG_INFINITY, 1.0, f64::NAN, 3.0];
        assert_eq!(percentile(&xs, 50.0), Some(2.0));
        assert_eq!(percentile(&xs, 100.0), Some(3.0));
        assert_eq!(percentile(&xs, 0.0), Some(1.0));
    }

    #[test]
    fn single_element() {
        assert_eq!(percentile(&[42.0], 95.0), Some(42.0));
    }

    #[test]
    fn out_of_range_p_is_clamped() {
        let xs = [1.0, 2.0, 3.0];
        assert_eq!(percentile(&xs, -5.0), Some(1.0));
        assert_eq!(percentile(&xs, 150.0), Some(3.0));
        assert_eq!(percentile(&xs, f64::NAN), Some(1.0), "NaN p clamps to 0");
    }

    #[test]
    fn selection_matches_full_sort() {
        // Pseudo-random fixture: selection must agree with the sort-based
        // definition at every percentile.
        let mut xs = Vec::new();
        let mut x = 1u64;
        for _ in 0..257 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            xs.push((x >> 11) as f64 / (1u64 << 53) as f64);
        }
        let mut sorted = xs.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for p in 0..=100 {
            let p = p as f64;
            assert_eq!(percentile(&xs, p), percentile_sorted(&sorted, p), "p={p}");
        }
    }

    #[test]
    fn percentile_sorted_edges() {
        assert_eq!(percentile_sorted(&[], 50.0), None);
        assert_eq!(percentile_sorted(&[4.0], 0.0), Some(4.0));
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile_sorted(&xs, 0.0), Some(1.0));
        assert_eq!(percentile_sorted(&xs, 25.0), Some(1.0));
        assert_eq!(percentile_sorted(&xs, 26.0), Some(2.0));
        assert_eq!(percentile_sorted(&xs, 100.0), Some(4.0));
    }
}
