//! Jain's fairness index.

/// Computes Jain's fairness index `(Σx)² / (n · Σx²)` over per-flow
/// throughputs.
///
/// The index is 1.0 when all flows receive equal throughput and approaches
/// `1/n` when one flow starves the rest — exactly the metric of Fig. 5 and
/// Fig. 17 of the paper. Returns `None` for an empty slice or when every
/// throughput is zero (the index is undefined there).
pub fn jain_index(throughputs: &[f64]) -> Option<f64> {
    if throughputs.is_empty() {
        return None;
    }
    debug_assert!(
        throughputs.iter().all(|&x| x >= 0.0),
        "throughputs must be non-negative"
    );
    let sum: f64 = throughputs.iter().sum();
    let sum_sq: f64 = throughputs.iter().map(|x| x * x).sum();
    if sum_sq == 0.0 {
        return None;
    }
    Some(sum * sum / (throughputs.len() as f64 * sum_sq))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_fairness() {
        assert!((jain_index(&[5.0, 5.0, 5.0, 5.0]).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn total_unfairness_tends_to_one_over_n() {
        let idx = jain_index(&[10.0, 0.0, 0.0, 0.0]).unwrap();
        assert!((idx - 0.25).abs() < 1e-12);
    }

    #[test]
    fn scale_invariant() {
        let a = jain_index(&[1.0, 2.0, 3.0]).unwrap();
        let b = jain_index(&[10.0, 20.0, 30.0]).unwrap();
        assert!((a - b).abs() < 1e-12);
    }

    #[test]
    fn undefined_cases() {
        assert_eq!(jain_index(&[]), None);
        assert_eq!(jain_index(&[0.0, 0.0]), None);
    }

    #[test]
    fn single_flow_is_fair() {
        assert!((jain_index(&[7.0]).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn bounded_between_one_over_n_and_one() {
        let xs = [1.0, 4.0, 2.5, 9.0, 0.1];
        let idx = jain_index(&xs).unwrap();
        assert!(idx > 1.0 / xs.len() as f64);
        assert!(idx <= 1.0);
    }
}
