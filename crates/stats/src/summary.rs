//! One-shot descriptive summaries of sample sets.

use crate::percentile::percentile;
use crate::welford::Welford;

/// A descriptive summary (mean, std-dev, extrema, selected percentiles) of a
/// set of samples, used by the experiment harness to render result tables.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Number of finite samples.
    pub n: usize,
    /// Sample mean.
    pub mean: f64,
    /// Population standard deviation.
    pub std_dev: f64,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
    /// Median (nearest rank).
    pub p50: f64,
    /// 95th percentile (nearest rank).
    pub p95: f64,
    /// 99th percentile (nearest rank).
    pub p99: f64,
}

impl Summary {
    /// Summarizes `xs`, ignoring non-finite values. Returns `None` when no
    /// finite samples remain.
    pub fn of(xs: &[f64]) -> Option<Self> {
        let finite: Vec<f64> = xs.iter().copied().filter(|x| x.is_finite()).collect();
        if finite.is_empty() {
            return None;
        }
        let mut w = Welford::new();
        for &x in &finite {
            w.add(x);
        }
        Some(Self {
            n: finite.len(),
            mean: w.mean(),
            std_dev: w.std_dev(),
            min: w.min().expect("non-empty"),
            max: w.max().expect("non-empty"),
            p50: percentile(&finite, 50.0).expect("non-empty"),
            p95: percentile(&finite, 95.0).expect("non-empty"),
            p99: percentile(&finite, 99.0).expect("non-empty"),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_known_data() {
        let xs: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        let s = Summary::of(&xs).unwrap();
        assert_eq!(s.n, 100);
        assert!((s.mean - 50.5).abs() < 1e-12);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 100.0);
        assert_eq!(s.p50, 50.0);
        assert_eq!(s.p95, 95.0);
        assert_eq!(s.p99, 99.0);
    }

    #[test]
    fn empty_returns_none() {
        assert_eq!(Summary::of(&[]), None);
        assert_eq!(Summary::of(&[f64::NAN]), None);
    }

    #[test]
    fn single_value() {
        let s = Summary::of(&[3.0]).unwrap();
        assert_eq!(s.mean, 3.0);
        assert_eq!(s.std_dev, 0.0);
        assert_eq!(s.p95, 3.0);
    }
}
