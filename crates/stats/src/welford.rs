//! Online mean/variance via Welford's algorithm.

/// Numerically stable online accumulator for mean, variance and extrema.
///
/// Proteus computes the RTT deviation `σ(RTT)` of every monitor interval
/// (Eq. 2 of the paper); doing so with a naive sum-of-squares is unstable
/// when RTTs are tens of milliseconds expressed in seconds, so the transport
/// layer feeds its samples through this accumulator instead.
#[derive(Debug, Clone, Default)]
pub struct Welford {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Welford {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one sample.
    pub fn add(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        let delta2 = x - self.mean;
        self.m2 += delta * delta2;
        if x < self.min {
            self.min = x;
        }
        if x > self.max {
            self.max = x;
        }
    }

    /// Number of samples seen so far.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Whether no samples have been added.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Sample mean; 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (divides by `n`, matching the paper's `σ(RTT)`
    /// definition); 0 when fewer than two samples.
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Unbiased sample variance (divides by `n - 1`); 0 when fewer than two
    /// samples.
    pub fn sample_variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Smallest sample; `None` when empty.
    pub fn min(&self) -> Option<f64> {
        if self.n == 0 {
            None
        } else {
            Some(self.min)
        }
    }

    /// Largest sample; `None` when empty.
    pub fn max(&self) -> Option<f64> {
        if self.n == 0 {
            None
        } else {
            Some(self.max)
        }
    }

    /// Resets the accumulator to its empty state.
    pub fn reset(&mut self) {
        *self = Self::new();
    }

    /// Merges another accumulator into this one (parallel Welford).
    pub fn merge(&mut self, other: &Welford) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let n_total = self.n + other.n;
        let delta = other.mean - self.mean;
        self.m2 += other.m2 + delta * delta * (self.n as f64 * other.n as f64) / n_total as f64;
        self.mean += delta * other.n as f64 / n_total as f64;
        self.n = n_total;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_stats(xs: &[f64]) -> (f64, f64) {
        let n = xs.len() as f64;
        let mean = xs.iter().sum::<f64>() / n;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n;
        (mean, var)
    }

    #[test]
    fn empty_is_zero() {
        let w = Welford::new();
        assert_eq!(w.count(), 0);
        assert!(w.is_empty());
        assert_eq!(w.mean(), 0.0);
        assert_eq!(w.variance(), 0.0);
        assert_eq!(w.std_dev(), 0.0);
        assert_eq!(w.min(), None);
        assert_eq!(w.max(), None);
    }

    #[test]
    fn single_sample() {
        let mut w = Welford::new();
        w.add(3.5);
        assert_eq!(w.mean(), 3.5);
        assert_eq!(w.variance(), 0.0);
        assert_eq!(w.min(), Some(3.5));
        assert_eq!(w.max(), Some(3.5));
    }

    #[test]
    fn matches_naive_computation() {
        let xs = [0.030, 0.0312, 0.0351, 0.0298, 0.0334, 0.0366, 0.0307];
        let mut w = Welford::new();
        for &x in &xs {
            w.add(x);
        }
        let (mean, var) = naive_stats(&xs);
        assert!((w.mean() - mean).abs() < 1e-12);
        assert!((w.variance() - var).abs() < 1e-12);
    }

    #[test]
    fn sample_variance_uses_n_minus_one() {
        let mut w = Welford::new();
        for x in [1.0, 2.0, 3.0] {
            w.add(x);
        }
        assert!((w.variance() - 2.0 / 3.0).abs() < 1e-12);
        assert!((w.sample_variance() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn merge_equals_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0 + 30.0).collect();
        let mut all = Welford::new();
        for &x in &xs {
            all.add(x);
        }
        let mut a = Welford::new();
        let mut b = Welford::new();
        for &x in &xs[..37] {
            a.add(x);
        }
        for &x in &xs[37..] {
            b.add(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        assert!((a.mean() - all.mean()).abs() < 1e-9);
        assert!((a.variance() - all.variance()).abs() < 1e-9);
        assert_eq!(a.min(), all.min());
        assert_eq!(a.max(), all.max());
    }

    #[test]
    fn merge_with_empty_sides() {
        let mut a = Welford::new();
        let mut b = Welford::new();
        b.add(1.0);
        b.add(2.0);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        let empty = Welford::new();
        a.merge(&empty);
        assert_eq!(a.count(), 2);
    }

    #[test]
    fn reset_clears_state() {
        let mut w = Welford::new();
        w.add(5.0);
        w.reset();
        assert!(w.is_empty());
        assert_eq!(w.min(), None);
    }

    #[test]
    fn stable_for_large_offsets() {
        // RTTs around 1e9 ns with tiny jitter: naive sum-of-squares would
        // lose all precision here.
        let mut w = Welford::new();
        for i in 0..1000 {
            w.add(1e9 + (i % 10) as f64);
        }
        assert!(w.variance() > 0.0);
        assert!(w.variance() < 100.0);
    }
}
