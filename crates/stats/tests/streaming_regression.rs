//! Property tests: [`RegressionAccumulator`] (streaming, O(1) per sample)
//! must agree with the two-pass [`LinearRegression::fit`] it replaced on the
//! per-ACK hot path.
//!
//! The two forms are algebraically identical but sum in different orders, so
//! bit-identity is impossible; the contract (DESIGN.md §4d) is agreement to a
//! *conditioning-aware* tolerance: `1e-9 ×` the natural scale of each fitted
//! quantity, which is ~1000× looser than the observed error (~1e-12 relative
//! on well-conditioned inputs) and still far tighter than anything the §5
//! noise gates can distinguish.

use proptest::prelude::*;
use proteus_stats::{LinearRegression, RegressionAccumulator};

/// Runs every point through the accumulator and finishes the fit.
fn stream_fit(points: &[(f64, f64)]) -> Option<LinearRegression> {
    let mut acc = RegressionAccumulator::new();
    for &(x, y) in points {
        acc.add(x, y);
    }
    acc.fit()
}

fn assert_close(label: &str, a: f64, b: f64, scale: f64) {
    let tol = 1e-9 * (scale + f64::MIN_POSITIVE);
    assert!(
        (a - b).abs() <= tol,
        "{label}: batch {a:e} vs streamed {b:e}, tol {tol:e}"
    );
}

/// Compares the two fits over one point set. Both must make the same
/// `Some`/`None` decision; when they fit, slope / intercept / residual /
/// predictions at the data's edges must agree to the documented tolerance.
fn assert_fits_agree(points: &[(f64, f64)]) {
    let batch = LinearRegression::fit(points);
    let streamed = stream_fit(points);
    match (batch, streamed) {
        (None, None) => {}
        (Some(b), Some(s)) => {
            let x_min = points.iter().map(|p| p.0).fold(f64::INFINITY, f64::min);
            let x_max = points.iter().map(|p| p.0).fold(f64::NEG_INFINITY, f64::max);
            let y_min = points.iter().map(|p| p.1).fold(f64::INFINITY, f64::min);
            let y_max = points.iter().map(|p| p.1).fold(f64::NEG_INFINITY, f64::max);
            let x_span = x_max - x_min;
            let y_span = y_max - y_min;
            // The slope is conditioned by the data's aspect ratio (a near-
            // vertical cloud legitimately amplifies rounding) and, for the
            // *batch* form, by how far the x-offset sits from zero: its
            // computed mean carries ~eps·n·|x̄| rounding, so the achievable
            // relative accuracy degrades by |x_max|/x_span. The 1e-6 factor
            // turns the outer 1e-9 into ~10·eps per unit of conditioning.
            let offset_cond = 1.0 + 1e-6 * x_max.abs() / x_span;
            let slope_scale = (b.slope.abs() + s.slope.abs() + y_span / x_span) * offset_cond;
            assert_eq!(b.n, s.n, "fitted point counts differ");
            assert_close("slope", b.slope, s.slope, slope_scale);
            assert_close(
                "intercept",
                b.intercept,
                s.intercept,
                y_max.abs() + y_span + slope_scale * x_max.abs(),
            );
            // Two conditioning terms beyond the obvious scales: the streamed
            // residual comes from `syy − slope·sxy`, which cancels when the
            // residual is small next to the y-trend (error ~ y_span² / rms);
            // and the *batch* residual reconstructs `intercept + slope·x`
            // from two huge cancelling terms when x carries a large offset
            // (per-point error ~ eps·|intercept|, folded in at 1e-3 so the
            // 1e-9 factor leaves ~1e4× headroom over eps growth).
            assert_close(
                "rms_residual",
                b.rms_residual,
                s.rms_residual,
                b.rms_residual
                    + y_span
                    + y_span * y_span / (b.rms_residual + f64::MIN_POSITIVE)
                    + 1e-3 * (b.intercept.abs() + slope_scale * x_max.abs()),
            );
            // Predictions at the data's edges are the well-conditioned form
            // of (intercept, slope) together — e.g. what an MI-close gradient
            // comparison actually consumes.
            for x in [x_min, x_max] {
                assert_close(
                    "prediction",
                    b.predict(x),
                    s.predict(x),
                    // A prediction inherits the intercept's tolerance plus
                    // the slope's, amplified by how far out x sits.
                    y_max.abs() + y_span + slope_scale * (x_span + x_max.abs()),
                );
            }
        }
        (b, s) => panic!(
            "fit disagreement: batch {:?} vs streamed {:?} on {points:?}",
            b.map(|f| f.slope),
            s.map(|f| f.slope)
        ),
    }
}

/// Flat `[x, y, x, y, ..]` draws folded into pairs, each coordinate scaled
/// into its own range (the vendored proptest has no tuple strategies).
fn pairs(
    n_pairs: std::ops::Range<usize>,
    x_lo: f64,
    x_hi: f64,
    y_lo: f64,
    y_hi: f64,
) -> impl Strategy<Value = Vec<(f64, f64)>> {
    prop::collection::vec(0.0f64..1.0, 2 * n_pairs.start..2 * n_pairs.end).prop_map(move |flat| {
        flat.chunks_exact(2)
            .map(|c| (x_lo + (x_hi - x_lo) * c[0], y_lo + (y_hi - y_lo) * c[1]))
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Unstructured clouds shaped like an MI's samples: send offsets up to
    /// half a second, RTTs between 1 ms and 300 ms.
    #[test]
    fn agrees_on_random_mi_points(points in pairs(2..120, 0.0, 0.5, 0.001, 0.3)) {
        assert_fits_agree(&points);
    }

    /// RTT trends the gates actually fit: `y = a + b·x` plus bounded noise,
    /// x strictly increasing. Also checks the true slope is recovered.
    #[test]
    fn agrees_on_trending_rtts(
        raw in prop::collection::vec(0.0f64..1.0, 8..100),
        slope in -0.5f64..0.5,
        base in 0.01f64..0.2,
        noise_amp in 0.0f64..0.005,
    ) {
        let points: Vec<(f64, f64)> = raw
            .iter()
            .enumerate()
            .map(|(i, r)| {
                let x = i as f64 * 0.003;
                (x, base + slope * x + noise_amp * (r - 0.5))
            })
            .collect();
        assert_fits_agree(&points);
        if noise_amp < 1e-6 {
            let s = stream_fit(&points).unwrap();
            prop_assert!((s.slope - slope).abs() < 1e-6 + noise_amp * 100.0);
        }
    }

    /// Adversarial anchor offsets: absolute wall-clock-style timestamps up to
    /// 1e9 s with millisecond spacing. The anchored sums must not suffer the
    /// textbook `Σx² − (Σx)²/n` cancellation blow-up.
    #[test]
    fn agrees_on_large_timestamp_offsets(
        raw in prop::collection::vec(0.0f64..1.0, 4..80),
        offset in 1e6f64..1e9,
        dt in 1e-4f64..1e-2,
        slope in -0.1f64..0.1,
    ) {
        let points: Vec<(f64, f64)> = raw
            .iter()
            .enumerate()
            .map(|(i, r)| (offset + i as f64 * dt, 0.05 + slope * (i as f64 * dt) + 0.001 * r))
            .collect();
        assert_fits_agree(&points);
    }

    /// Fewer than two samples never fits, in either form.
    #[test]
    fn single_sample_returns_none(x in -1e6f64..1e6, y in -1e3f64..1e3) {
        prop_assert!(LinearRegression::fit(&[(x, y)]).is_none());
        let mut acc = RegressionAccumulator::new();
        prop_assert!(acc.fit().is_none());
        acc.add(x, y);
        prop_assert!(acc.fit().is_none());
        prop_assert_eq!(acc.count(), 1);
    }

    /// Constant RTT: the streamed slope and residual are *exactly* zero
    /// (every `dy` is bit-zero), the batch form agrees to tolerance.
    #[test]
    fn constant_rtt_gives_zero_slope(
        xs in prop::collection::vec(0.0f64..0.5, 2..60),
        rtt in 0.001f64..0.3,
    ) {
        let points: Vec<(f64, f64)> = xs.iter().map(|&x| (x, rtt)).collect();
        if let Some(s) = stream_fit(&points) {
            prop_assert_eq!(s.slope, 0.0);
            prop_assert_eq!(s.rms_residual, 0.0);
            let b = LinearRegression::fit(&points).unwrap();
            prop_assert!(b.slope.abs() < 1e-9, "batch slope {:e}", b.slope);
        }
    }

    /// All-x-identical data: the streamed fit is always `None` (every `dx`
    /// is bit-zero, so sxx is exactly 0). The two-pass form rounds the mean
    /// of n identical values, which for some n lands 1 ulp off x and yields
    /// a garbage near-vertical fit instead — the accumulator's behavior is
    /// the intentional one, so only it is pinned here.
    #[test]
    fn constant_x_streamed_is_none(
        ys in prop::collection::vec(0.0f64..1.0, 2..40),
        x in -1e3f64..1e3,
    ) {
        let points: Vec<(f64, f64)> = ys.iter().map(|&y| (x, y)).collect();
        prop_assert!(stream_fit(&points).is_none());
    }

    /// `reset` restores the empty state: a reused accumulator matches a
    /// fresh one bit-for-bit (the per-MI structs are reused across MIs).
    #[test]
    fn reset_matches_fresh(points in pairs(2..40, 0.0, 0.5, 0.001, 0.3)) {
        let mut reused = RegressionAccumulator::new();
        reused.add(123.0, 456.0);
        reused.add(124.0, 457.0);
        reused.reset();
        prop_assert!(reused.is_empty());
        let mut fresh = RegressionAccumulator::new();
        for &(x, y) in &points {
            reused.add(x, y);
            fresh.add(x, y);
        }
        prop_assert_eq!(reused, fresh);
    }
}
