//! Rendering and persistence of tuning results.
//!
//! A search writes three artifacts into the output directory:
//!
//! * `leaderboard.csv` — every distinct candidate, best first,
//! * `frontier.csv` — the scavenger-utilization / harm Pareto front,
//! * `best_config.json` — the winner, its genes and its full canonical
//!   config string, machine-readable.
//!
//! All three (and the returned text report) are pure functions of the
//! leaderboard — no wall-clock, no paths — so determinism tests can
//! compare them byte-for-byte across runs and worker counts.

use std::fs;
use std::path::Path;

use proteus_runner::json::{array, Obj};

use crate::eval::TuneOpts;
use crate::search::{RankedCandidate, SearchOutcome, SearchSpec};
use crate::space::Candidate;

/// Leaderboard CSV header.
pub const LEADERBOARD_HEADER: &str = "rank,id,origin,variant,probe,d,g1,g2,k,eps,omega_step,\
budget_ms,threshold_mbps,scav_mbps,scav_util,harm,p95_rtt_s,feasible,fitness";

fn gene_cells(c: &Candidate) -> String {
    format!(
        "{},{},{:?},{:?},{:?},{},{:?},{:?},{:?},{:?}",
        c.variant.name(),
        if c.majority_probe {
            "majority"
        } else {
            "agreement"
        },
        c.deviation_coef,
        c.g1,
        c.g2,
        c.trend_window,
        c.epsilon,
        c.omega_step,
        c.budget_ms,
        c.threshold_mbps,
    )
}

fn row(rank: usize, r: &RankedCandidate) -> String {
    let m = &r.eval.metrics;
    format!(
        "{rank},{},{},{},{:.6},{:.6},{:.6},{:.6},{},{:.6}",
        r.id,
        r.origin,
        gene_cells(&r.eval.candidate),
        m.scav_mbps,
        m.scav_util,
        m.harm,
        m.p95_rtt_s,
        r.eval.feasible,
        r.eval.fitness,
    )
}

/// Renders the full leaderboard as CSV (best first).
pub fn leaderboard_csv(outcome: &SearchOutcome) -> String {
    let mut out = String::from(LEADERBOARD_HEADER);
    out.push('\n');
    for (i, r) in outcome.leaderboard.iter().enumerate() {
        out.push_str(&row(i + 1, r));
        out.push('\n');
    }
    out
}

/// The scavenger-utilization / harm Pareto front: candidates no other
/// candidate beats on *both* axes (higher `scav_util`, lower `harm`).
/// Sorted by harm ascending.
pub fn pareto_front(outcome: &SearchOutcome) -> Vec<&RankedCandidate> {
    let mut front: Vec<&RankedCandidate> = outcome
        .leaderboard
        .iter()
        .filter(|r| {
            !outcome.leaderboard.iter().any(|o| {
                let (m, om) = (&r.eval.metrics, &o.eval.metrics);
                om.scav_util >= m.scav_util
                    && om.harm <= m.harm
                    && (om.scav_util > m.scav_util || om.harm < m.harm)
            })
        })
        .collect();
    front.sort_by(|a, b| {
        a.eval
            .metrics
            .harm
            .partial_cmp(&b.eval.metrics.harm)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| a.id.cmp(&b.id))
    });
    front
}

/// Renders the Pareto front as CSV (same schema as the leaderboard, rank =
/// position along the front).
pub fn frontier_csv(outcome: &SearchOutcome) -> String {
    let mut out = String::from(LEADERBOARD_HEADER);
    out.push('\n');
    for (i, r) in pareto_front(outcome).iter().enumerate() {
        out.push_str(&row(i + 1, r));
        out.push('\n');
    }
    out
}

fn candidate_json(c: &Candidate) -> String {
    let mut o = Obj::new();
    o.str("variant", c.variant.name())
        .str(
            "probe",
            if c.majority_probe {
                "majority"
            } else {
                "agreement"
            },
        )
        .num("deviation_coef", c.deviation_coef)
        .num("g1", c.g1)
        .num("g2", c.g2)
        .int("trend_window", c.trend_window as u64)
        .num("epsilon", c.epsilon)
        .num("omega_step", c.omega_step)
        .num("budget_ms", c.budget_ms)
        .num("threshold_mbps", c.threshold_mbps);
    o.render()
}

/// Renders `best_config.json`: the winning candidate with its metrics,
/// the objective, the scenario set and the search accounting.
pub fn best_config_json(spec: &SearchSpec, outcome: &SearchOutcome) -> String {
    let best = outcome
        .leaderboard
        .first()
        .expect("search produced an empty leaderboard");
    let m = &best.eval.metrics;
    let scenarios: Vec<String> = spec
        .scenarios
        .iter()
        .map(|s| {
            let mut o = Obj::new();
            o.str("name", s.name)
                .str("primary", s.primary)
                .num("bw_mbps", s.bw_mbps)
                .num("rtt_ms", s.rtt_ms)
                .num("buffer_bdp", s.buffer_bdp)
                .num("secs", s.secs);
            o.render()
        })
        .collect();
    let metrics = {
        let mut o = Obj::new();
        o.num("scav_mbps", m.scav_mbps)
            .num("scav_util", m.scav_util)
            .num("harm", m.harm)
            .num("p95_rtt_s", m.p95_rtt_s);
        o.render()
    };
    let mut o = Obj::new();
    o.str("objective", &spec.objective.to_string())
        .str("id", &best.id)
        .str("origin", &best.origin)
        .bool("feasible", best.eval.feasible)
        .num("fitness", best.eval.fitness)
        .raw("metrics", &metrics)
        .raw("candidate", &candidate_json(&best.eval.candidate))
        .str("config_canonical", &best.eval.candidate.canonical())
        .raw("scenarios", &array(&scenarios))
        .int("evaluated", outcome.evaluated as u64)
        .int("distinct", outcome.leaderboard.len() as u64)
        .bool("ga_skipped", outcome.ga_skipped)
        .int("search_seed", spec.seed);
    let mut s = o.render();
    s.push('\n');
    s
}

/// Renders the human-readable report. Cache accounting is included (it is
/// informative), but wall-clock never is, so two runs of the same search
/// produce identical text.
pub fn text_report(spec: &SearchSpec, outcome: &SearchOutcome) -> String {
    use std::fmt::Write as _;
    let mut s = String::new();
    let _ = writeln!(s, "# proteus-tune: {}", spec.objective);
    let _ = writeln!(
        s,
        "evaluated {} candidates ({} distinct) over {} scenario(s); jobs: {} executed, {} cached, {} skipped",
        outcome.evaluated,
        outcome.leaderboard.len(),
        spec.scenarios.len(),
        outcome.jobs_executed,
        outcome.jobs_cached,
        outcome.jobs_skipped,
    );
    if outcome.ga_skipped {
        let _ = writeln!(
            s,
            "NOTE: shard filter active — genetic phase skipped. Run every shard to warm the cache, then re-run unsharded for the full search."
        );
    }
    let _ = writeln!(s);
    let _ = writeln!(
        s,
        "{:<5} {:<13} {:<6} {:<13} {:>9} {:>6} {:>6} {:>10} {:>10} {:>8} {:>9}",
        "rank",
        "id",
        "origin",
        "variant",
        "d",
        "g1",
        "g2",
        "scav_util",
        "harm",
        "feasible",
        "fitness"
    );
    for (i, r) in outcome.leaderboard.iter().take(10).enumerate() {
        let c = &r.eval.candidate;
        let m = &r.eval.metrics;
        let _ = writeln!(
            s,
            "{:<5} {:<13} {:<6} {:<13} {:>9.0} {:>6.2} {:>6.2} {:>10.4} {:>10.4} {:>8} {:>9.4}",
            i + 1,
            r.id,
            r.origin,
            c.variant.name(),
            c.deviation_coef,
            c.g1,
            c.g2,
            m.scav_util,
            m.harm,
            r.eval.feasible,
            r.eval.fitness,
        );
    }
    let front = pareto_front(outcome);
    let _ = writeln!(s);
    let _ = writeln!(
        s,
        "pareto front (scav_util vs harm): {} point(s)",
        front.len()
    );
    s
}

/// Writes the three artifacts into `out_dir` and returns the text report.
pub fn write_reports(spec: &SearchSpec, outcome: &SearchOutcome, opts: &TuneOpts) -> String {
    write_artifacts(spec, outcome, &opts.out_dir);
    text_report(spec, outcome)
}

fn write_artifacts(spec: &SearchSpec, outcome: &SearchOutcome, dir: &Path) {
    fs::create_dir_all(dir).expect("create tune output dir");
    fs::write(dir.join("leaderboard.csv"), leaderboard_csv(outcome))
        .expect("write leaderboard.csv");
    fs::write(dir.join("frontier.csv"), frontier_csv(outcome)).expect("write frontier.csv");
    fs::write(
        dir.join("best_config.json"),
        best_config_json(spec, outcome),
    )
    .expect("write best_config.json");
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::CandidateEval;
    use crate::objective::CandidateMetrics;
    use crate::search::quick_spec;

    fn fake(id: &str, scav_util: f64, harm: f64, feasible: bool) -> RankedCandidate {
        RankedCandidate {
            eval: CandidateEval {
                candidate: Candidate::paper_default(),
                metrics: CandidateMetrics {
                    scav_mbps: scav_util * 50.0,
                    scav_util,
                    harm,
                    p95_rtt_s: 0.05,
                },
                feasible,
                fitness: if feasible { scav_util } else { -harm },
            },
            origin: "grid".into(),
            id: id.into(),
        }
    }

    fn fake_outcome() -> SearchOutcome {
        SearchOutcome {
            leaderboard: vec![
                fake("aaa", 0.50, 0.02, true),
                fake("bbb", 0.40, 0.01, true),
                fake("ccc", 0.45, 0.03, true),  // dominated by aaa
                fake("ddd", 0.90, 0.30, false), // frontier: best util
            ],
            evaluated: 4,
            jobs_executed: 4,
            jobs_cached: 0,
            jobs_skipped: 0,
            ga_skipped: false,
        }
    }

    #[test]
    fn leaderboard_csv_shape() {
        let csv = leaderboard_csv(&fake_outcome());
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 5);
        assert_eq!(lines[0], LEADERBOARD_HEADER);
        assert!(lines[1].starts_with("1,aaa,grid,Proteus-S,majority,"));
        let cols = lines[1].split(',').count();
        assert_eq!(cols, LEADERBOARD_HEADER.split(',').count());
    }

    #[test]
    fn frontier_drops_dominated_points() {
        let out = fake_outcome();
        let ids: Vec<&str> = pareto_front(&out).iter().map(|r| r.id.as_str()).collect();
        // ccc is dominated by aaa (less util, more harm); the rest trade off.
        assert_eq!(ids, ["bbb", "aaa", "ddd"]);
    }

    #[test]
    fn best_config_json_is_flat_and_complete() {
        let spec = quick_spec(1);
        let json = best_config_json(&spec, &fake_outcome());
        for needle in [
            "\"objective\":\"maximize scav_util subject to harm < 0.05\"",
            "\"id\":\"aaa\"",
            "\"config_canonical\":",
            "\"scenarios\":[",
            "\"ga_skipped\":false",
        ] {
            assert!(json.contains(needle), "missing {needle} in {json}");
        }
    }

    #[test]
    fn text_report_has_no_wall_clock() {
        let spec = quick_spec(1);
        let text = text_report(&spec, &fake_outcome());
        assert!(text.contains("4 candidates (4 distinct)"));
        assert!(
            !text.to_lowercase().contains("secs"),
            "report must stay time-free"
        );
    }
}
