//! The two-phase search: a coarse grid sweep seeding a deterministic
//! genetic refinement.
//!
//! Phase 1 sweeps the ablation axes the paper discusses explicitly — the
//! utility variant, the deviation coefficient `d`, and the §5 gate gains —
//! at evenly spaced levels. Phase 2 runs a small generational GA
//! (tournament selection, uniform crossover, bounded mutation, elitism)
//! seeded from the grid's leaderboard. All randomness comes from one
//! `SmallRng` seeded by [`SearchSpec::seed`] with a fixed draw order, and
//! every evaluation goes through the content-addressed campaign cache, so
//! the same seed reproduces the same winner byte-for-byte — and a warm
//! re-run is pure cache replay.

use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};

use proteus_runner::JobKey;

use crate::eval::{evaluate_batch, CandidateEval, TuneOpts};
use crate::objective::Objective;
use crate::scenarios::{full_scenarios, quick_scenarios, EvalScenario};
use crate::space::{Candidate, SearchSpace, Variant};

/// Grid-phase resolution: how many evenly spaced levels each swept gene
/// gets (the variant axis always enumerates every enabled variant).
#[derive(Debug, Clone, Copy)]
pub struct GridLevels {
    /// Levels of the deviation coefficient `d`.
    pub deviation: usize,
    /// Levels of gate gain G1.
    pub g1: usize,
    /// Levels of gate gain G2.
    pub g2: usize,
}

/// A complete search declaration.
#[derive(Debug, Clone)]
pub struct SearchSpec {
    /// Gene bounds and enabled variants.
    pub space: SearchSpace,
    /// What the search optimizes.
    pub objective: Objective,
    /// Scenarios every candidate is scored on.
    pub scenarios: Vec<EvalScenario>,
    /// Grid-phase resolution.
    pub grid: GridLevels,
    /// GA population size.
    pub pop: usize,
    /// GA generations (0 disables the genetic phase).
    pub generations: usize,
    /// Population slots reserved for the current leaders (not re-bred).
    pub elitism: usize,
    /// Tournament size for parent selection.
    pub tournament: usize,
    /// Probability a child is a crossover (vs a clone of one parent).
    pub crossover_rate: f64,
    /// Per-gene mutation probability.
    pub mutation_rate: f64,
    /// Search RNG seed (selection/crossover/mutation draws only; the
    /// simulations take their seeds from [`TuneOpts::sim_seed`]).
    pub seed: u64,
}

/// The `--quick` search: 64 grid cells + 2 GA generations over two 16 s
/// scenarios. Finishes in minutes cold, seconds warm.
pub fn quick_spec(seed: u64) -> SearchSpec {
    SearchSpec {
        space: SearchSpace::default(),
        objective: Objective::default_scavenger(),
        scenarios: quick_scenarios(),
        grid: GridLevels {
            deviation: 4,
            g1: 2,
            g2: 2,
        },
        pop: 16,
        generations: 2,
        elitism: 2,
        tournament: 3,
        crossover_rate: 0.9,
        mutation_rate: 0.3,
        seed,
    }
}

/// The full search: 216 grid cells + 6 GA generations over three 30 s
/// scenarios (including a BBR primary).
pub fn full_spec(seed: u64) -> SearchSpec {
    SearchSpec {
        space: SearchSpace::default(),
        objective: Objective::default_scavenger(),
        scenarios: full_scenarios(),
        grid: GridLevels {
            deviation: 6,
            g1: 3,
            g2: 3,
        },
        pop: 24,
        generations: 6,
        elitism: 2,
        tournament: 3,
        crossover_rate: 0.9,
        mutation_rate: 0.3,
        seed,
    }
}

/// One leaderboard row: an evaluation plus where the candidate came from.
#[derive(Debug, Clone)]
pub struct RankedCandidate {
    /// The evaluation.
    pub eval: CandidateEval,
    /// `"grid"` or `"gen<N>"`.
    pub origin: String,
    /// Short stable identifier: the FNV-1a hash of
    /// [`Candidate::canonical`], truncated to 12 hex chars.
    pub id: String,
}

/// What a search produced.
#[derive(Debug, Clone)]
pub struct SearchOutcome {
    /// Every distinct candidate evaluated, best first.
    pub leaderboard: Vec<RankedCandidate>,
    /// Candidate evaluations requested (including behavioral duplicates).
    pub evaluated: usize,
    /// Simulation jobs actually executed across all campaigns.
    pub jobs_executed: usize,
    /// Jobs answered from the result cache.
    pub jobs_cached: usize,
    /// Cache-miss jobs skipped by the shard filter.
    pub jobs_skipped: usize,
    /// `true` when a shard filter suppressed the genetic phase.
    pub ga_skipped: bool,
}

/// Short stable candidate id (12 hex chars of the canonical-string hash).
pub fn candidate_id(c: &Candidate) -> String {
    let mut hex = JobKey::from_descriptor(&c.canonical()).hex();
    hex.truncate(12);
    hex
}

fn levels(n: usize, (lo, hi): (f64, f64)) -> Vec<f64> {
    if n <= 1 {
        vec![(lo + hi) / 2.0]
    } else {
        (0..n)
            .map(|i| lo + (hi - lo) * i as f64 / (n - 1) as f64)
            .collect()
    }
}

/// The grid-phase candidate list: every enabled variant × evenly spaced
/// `d` × G1 × G2, with the remaining genes at their paper defaults.
pub fn grid_candidates(spec: &SearchSpec) -> Vec<Candidate> {
    let mut out = Vec::new();
    for &variant in &spec.space.variants {
        for &d in &levels(spec.grid.deviation, spec.space.deviation_coef) {
            for &g1 in &levels(spec.grid.g1, spec.space.g1) {
                for &g2 in &levels(spec.grid.g2, spec.space.g2) {
                    let mut c = Candidate::paper_default();
                    c.variant = variant;
                    c.deviation_coef = d;
                    c.g1 = g1;
                    c.g2 = g2;
                    out.push(c);
                }
            }
        }
    }
    out
}

/// Ranking order: feasible first, then fitness descending, then id
/// ascending as the deterministic tiebreak. NaN fitness (impossible from
/// the metric arithmetic, but cheap to defend against) ties.
fn rank_cmp(a: &RankedCandidate, b: &RankedCandidate) -> std::cmp::Ordering {
    b.eval
        .feasible
        .cmp(&a.eval.feasible)
        .then(
            b.eval
                .fitness
                .partial_cmp(&a.eval.fitness)
                .unwrap_or(std::cmp::Ordering::Equal),
        )
        .then_with(|| a.id.cmp(&b.id))
}

/// Sorts and dedups the board on candidate identity. Equal ids are the
/// same behavior (same jobs, same metrics), so keep-first is lossless.
fn settle(board: &mut Vec<RankedCandidate>) {
    board.sort_by(rank_cmp);
    let mut seen = std::collections::HashSet::new();
    board.retain(|r| seen.insert(r.id.clone()));
}

/// Best-of-`k` tournament over a pool sorted best-first: the winner is the
/// lowest drawn index.
fn tournament(rng: &mut SmallRng, pool: usize, k: usize) -> usize {
    (0..k.max(1))
        .map(|_| rng.random_range(0..pool))
        .min()
        .expect("k >= 1")
}

/// Runs the full search: grid sweep, then (unless sharded) the GA.
///
/// Under a shard filter the genetic phase is skipped: each generation's
/// candidates depend on the previous generation's *complete* metrics,
/// which a shard does not have. The sharded workflow is: run every shard
/// (warming one shared or several mergeable caches), then re-run unsharded
/// for the full search as pure cache replay of the grid plus a live GA.
pub fn run_search(spec: &SearchSpec, opts: &TuneOpts) -> SearchOutcome {
    spec.space.validate();
    assert!(spec.elitism <= spec.pop, "elitism exceeds population");

    let mut evaluated = 0;
    let mut executed = 0;
    let mut cached = 0;
    let mut skipped = 0;
    let mut board: Vec<RankedCandidate> = Vec::new();

    let absorb = |board: &mut Vec<RankedCandidate>, origin: &str, evals: Vec<CandidateEval>| {
        for e in evals {
            board.push(RankedCandidate {
                id: candidate_id(&e.candidate),
                origin: origin.to_string(),
                eval: e,
            });
        }
        settle(board);
    };

    let grid = grid_candidates(spec);
    let (evals, stats) = evaluate_batch("tune-grid", &grid, &spec.scenarios, &spec.objective, opts);
    evaluated += grid.len();
    executed += stats.executed;
    cached += stats.cached;
    skipped += stats.skipped;
    absorb(&mut board, "grid", evals);

    let ga_skipped = opts.shard.is_some() && spec.generations > 0;
    if !ga_skipped {
        let mut rng = SmallRng::seed_from_u64(spec.seed);
        for gen in 1..=spec.generations {
            // Parent pool: the current top of the board, up to `pop`.
            let parents: Vec<Candidate> = board
                .iter()
                .take(spec.pop)
                .map(|r| r.eval.candidate)
                .collect();
            let breed = spec.pop.saturating_sub(spec.elitism).max(1);
            let mut children = Vec::with_capacity(breed);
            for _ in 0..breed {
                // Fixed draw order per child: parent a, parent b,
                // crossover decision (+ gene picks), mutation.
                let a = parents[tournament(&mut rng, parents.len(), spec.tournament)];
                let b = parents[tournament(&mut rng, parents.len(), spec.tournament)];
                let mut child = if rng.random::<f64>() < spec.crossover_rate {
                    spec.space.crossover(&a, &b, &mut rng)
                } else {
                    a
                };
                spec.space.mutate(&mut child, &mut rng, spec.mutation_rate);
                children.push(child);
            }
            let name = format!("tune-gen{gen}");
            let (evals, stats) =
                evaluate_batch(&name, &children, &spec.scenarios, &spec.objective, opts);
            evaluated += children.len();
            executed += stats.executed;
            cached += stats.cached;
            skipped += stats.skipped;
            absorb(&mut board, &name.replace("tune-", ""), evals);
        }
    }

    SearchOutcome {
        leaderboard: board,
        evaluated,
        jobs_executed: executed,
        jobs_cached: cached,
        jobs_skipped: skipped,
        ga_skipped,
    }
}

/// The enabled-variant axis length (used by reports to explain grid size).
pub fn variant_axis(spec: &SearchSpec) -> &[Variant] {
    &spec.space.variants
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_grid_has_64_cells() {
        let spec = quick_spec(1);
        let grid = grid_candidates(&spec);
        assert_eq!(grid.len(), 64);
        for c in &grid {
            assert!(spec.space.contains(c), "grid cell out of bounds: {c:?}");
        }
    }

    #[test]
    fn full_grid_has_216_cells() {
        assert_eq!(grid_candidates(&full_spec(1)).len(), 216);
    }

    #[test]
    fn grid_levels_span_bounds() {
        let l = levels(4, (300.0, 3000.0));
        assert_eq!(l[0], 300.0);
        assert_eq!(l[3], 3000.0);
        assert_eq!(levels(1, (2.0, 4.0)), vec![3.0]);
    }

    #[test]
    fn ranking_prefers_feasible_then_fitness_then_id() {
        use crate::objective::CandidateMetrics;
        let mk = |feasible, fitness, id: &str| RankedCandidate {
            eval: CandidateEval {
                candidate: Candidate::paper_default(),
                metrics: CandidateMetrics::default(),
                feasible,
                fitness,
            },
            origin: "grid".into(),
            id: id.into(),
        };
        let mut board = [
            mk(false, 9.0, "cc"),
            mk(true, 0.5, "bb"),
            mk(true, 0.9, "aa"),
            mk(true, 0.5, "ab"),
        ];
        board.sort_by(rank_cmp);
        let ids: Vec<_> = board.iter().map(|r| r.id.as_str()).collect();
        assert_eq!(ids, ["aa", "ab", "bb", "cc"]);
    }

    #[test]
    fn tournament_is_biased_to_the_front() {
        use rand::SeedableRng;
        let mut rng = SmallRng::seed_from_u64(3);
        let picks: Vec<usize> = (0..200).map(|_| tournament(&mut rng, 10, 3)).collect();
        let front = picks.iter().filter(|&&i| i < 5).count();
        assert!(
            front > 120,
            "best-of-3 should favor the front half: {front}"
        );
        assert!(picks.iter().all(|&i| i < 10));
    }

    #[test]
    fn candidate_ids_are_short_and_stable() {
        let c = Candidate::paper_default();
        assert_eq!(candidate_id(&c).len(), 12);
        assert_eq!(candidate_id(&c), candidate_id(&c));
        let mut d = c;
        d.deviation_coef = 301.0;
        assert_ne!(candidate_id(&c), candidate_id(&d));
    }
}
