//! The candidate genome and the bounded search space it lives in.
//!
//! A [`Candidate`] is one point of `ProteusConfig` space plus a utility
//! [`Variant`]: the knobs the paper hand-picks (scavenger penalty `d`, §5
//! gate gains G1/G2, trend window `k`, probing ε/ω-step, probe pair count)
//! together with *which* utility shape the scavenger optimizes. The
//! [`SearchSpace`] declares per-gene bounds and provides the deterministic
//! sampling, mutation and crossover operators the genetic search uses —
//! every operator keeps its output inside the declared bounds (property
//! tested in `tests/determinism.rs`).

use proteus_core::noise::TREND_WINDOW_MAX;
use proteus_core::{
    DelayBudgetParams, Mode, NoiseTolerance, ProbeRule, ProteusConfig, SharedThreshold,
};
use rand::rngs::SmallRng;
use rand::RngExt;

/// Which utility shape a candidate optimizes (the ablation axis).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Variant {
    /// Proteus-S (Eq. 2): the paper's RTT-deviation scavenger.
    Scavenger,
    /// Loss-only ablation: Proteus-P without latency terms (Allegro/Vivace
    /// style) — expected to fail the harm constraint at any coefficients.
    LossOnly,
    /// Delay-budget scavenger: absolute-RTT budget à la D'Aronco.
    DelayBudget,
    /// Proteus-H (Eq. 3) with a fixed threshold (Mbps).
    Hybrid,
}

impl Variant {
    /// Every variant, in canonical enumeration order.
    pub const ALL: [Variant; 4] = [
        Variant::Scavenger,
        Variant::LossOnly,
        Variant::DelayBudget,
        Variant::Hybrid,
    ];

    /// Display name (matches [`Mode::name`] of the mode it builds).
    pub fn name(self) -> &'static str {
        match self {
            Variant::Scavenger => "Proteus-S",
            Variant::LossOnly => "Loss-Only",
            Variant::DelayBudget => "Delay-Budget",
            Variant::Hybrid => "Proteus-H",
        }
    }
}

/// One point of the search space: a utility variant plus every tuned knob.
///
/// Genes a variant does not consume (`budget_ms` outside `DelayBudget`,
/// `threshold_mbps` outside `Hybrid`) are carried anyway so the genome has
/// a fixed shape; they do not enter [`Candidate::canonical`], so two
/// candidates that behave identically share one cache identity.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Candidate {
    /// Utility shape.
    pub variant: Variant,
    /// Scavenger RTT-deviation coefficient `d` (also the delay-budget
    /// variant's `UtilityParams` carry it, unused).
    pub deviation_coef: f64,
    /// Trending-gradient gate gain G1 (§5).
    pub g1: f64,
    /// Trending-deviation gate gain G2 (§5).
    pub g2: f64,
    /// Trend window `k`, MIs (must stay within `1..=TREND_WINDOW_MAX`).
    pub trend_window: usize,
    /// Probing perturbation ε.
    pub epsilon: f64,
    /// Rate-change bound increment ω-step.
    pub omega_step: f64,
    /// `true` → three-pair majority probing; `false` → two-pair agreement.
    pub majority_probe: bool,
    /// Delay budget, milliseconds (`DelayBudget` only).
    pub budget_ms: f64,
    /// Hybrid rate threshold, Mbps (`Hybrid` only).
    pub threshold_mbps: f64,
}

impl Candidate {
    /// The paper's hand-picked configuration as a Proteus-S candidate.
    pub fn paper_default() -> Self {
        Self {
            variant: Variant::Scavenger,
            deviation_coef: 1500.0,
            g1: 2.0,
            g2: 4.0,
            trend_window: 6,
            epsilon: 0.05,
            omega_step: 0.05,
            majority_probe: true,
            budget_ms: 60.0,
            threshold_mbps: 10.0,
        }
    }

    /// Materializes the candidate as a full sender config with `seed` as
    /// the controller's RNG seed.
    pub fn config(&self, seed: u64) -> ProteusConfig {
        let mut cfg = ProteusConfig::proteus().with_seed(seed);
        cfg.utility.deviation_coef = self.deviation_coef;
        if let NoiseTolerance::Adaptive(ref mut a) = cfg.noise {
            a.g1 = self.g1;
            a.g2 = self.g2;
            a.trend_window = self.trend_window;
        }
        cfg.rate_control.epsilon = self.epsilon;
        cfg.rate_control.omega_step = self.omega_step;
        cfg.rate_control.probe_rule = if self.majority_probe {
            ProbeRule::Majority
        } else {
            ProbeRule::Agreement
        };
        cfg
    }

    /// Builds the sender [`Mode`] this candidate's variant selects.
    ///
    /// The hybrid variant allocates a [`SharedThreshold`] (an `Rc` cell,
    /// deliberately not `Send`), so call this *inside* a job closure, not
    /// before submitting it to a campaign.
    pub fn mode(&self) -> Mode {
        match self.variant {
            Variant::Scavenger => Mode::Scavenger,
            Variant::LossOnly => Mode::LossOnly,
            Variant::DelayBudget => Mode::DelayBudget(DelayBudgetParams {
                budget_s: self.budget_ms / 1e3,
                over_coef: self.deviation_coef,
            }),
            Variant::Hybrid => Mode::Hybrid(SharedThreshold::new(self.threshold_mbps)),
        }
    }

    /// Stable serialization of the variant *and the genes it consumes* —
    /// the mode half of the candidate's cache identity.
    pub fn mode_tag(&self) -> String {
        match self.variant {
            Variant::Scavenger => "scavenger".to_string(),
            Variant::LossOnly => "loss-only".to_string(),
            Variant::DelayBudget => format!(
                "delay-budget(b={:?}ms,w={:?})",
                self.budget_ms, self.deviation_coef
            ),
            Variant::Hybrid => format!("hybrid(th={:?})", self.threshold_mbps),
        }
    }

    /// The candidate's behavioral identity: config (seed-independent) plus
    /// mode tag. Candidates with equal `canonical()` produce byte-identical
    /// simulations, so the leaderboard dedups on it and their evaluation
    /// jobs share cache entries.
    pub fn canonical(&self) -> String {
        format!("{}/mode={}", self.config(0).canonical(), self.mode_tag())
    }
}

/// Inclusive per-gene bounds plus the enabled variant set.
#[derive(Debug, Clone)]
pub struct SearchSpace {
    /// Enabled utility variants.
    pub variants: Vec<Variant>,
    /// Bounds on the deviation coefficient `d`.
    pub deviation_coef: (f64, f64),
    /// Bounds on gate gain G1.
    pub g1: (f64, f64),
    /// Bounds on gate gain G2.
    pub g2: (f64, f64),
    /// Bounds on the trend window `k` (clamped to `1..=TREND_WINDOW_MAX`).
    pub trend_window: (usize, usize),
    /// Bounds on the probing perturbation ε.
    pub epsilon: (f64, f64),
    /// Bounds on the ω-step increment.
    pub omega_step: (f64, f64),
    /// Bounds on the delay budget, ms.
    pub budget_ms: (f64, f64),
    /// Bounds on the hybrid threshold, Mbps.
    pub threshold_mbps: (f64, f64),
}

impl Default for SearchSpace {
    fn default() -> Self {
        Self {
            variants: Variant::ALL.to_vec(),
            deviation_coef: (300.0, 3000.0),
            g1: (0.5, 8.0),
            g2: (1.0, 16.0),
            trend_window: (2, TREND_WINDOW_MAX),
            epsilon: (0.01, 0.10),
            omega_step: (0.01, 0.10),
            budget_ms: (40.0, 120.0),
            threshold_mbps: (1.0, 20.0),
        }
    }
}

/// Uniform jitter half-width for mutation, as a fraction of a gene's range.
const MUTATION_SPAN: f64 = 0.25;

impl SearchSpace {
    /// Panics if the space is malformed (empty variant set, inverted
    /// bounds, or a trend window outside what `MiNoiseGate` accepts).
    pub fn validate(&self) {
        assert!(!self.variants.is_empty(), "search space has no variants");
        let ok = |(lo, hi): (f64, f64)| lo.is_finite() && hi.is_finite() && lo <= hi;
        assert!(ok(self.deviation_coef), "bad deviation_coef bounds");
        assert!(ok(self.g1) && ok(self.g2), "bad gate-gain bounds");
        assert!(
            ok(self.epsilon) && ok(self.omega_step),
            "bad probing bounds"
        );
        assert!(
            ok(self.budget_ms) && ok(self.threshold_mbps),
            "bad variant bounds"
        );
        assert!(
            (1..=TREND_WINDOW_MAX).contains(&self.trend_window.0)
                && self.trend_window.0 <= self.trend_window.1
                && self.trend_window.1 <= TREND_WINDOW_MAX,
            "trend_window bounds outside 1..={TREND_WINDOW_MAX}"
        );
    }

    /// Whether every gene of `c` is inside bounds and its variant enabled.
    pub fn contains(&self, c: &Candidate) -> bool {
        let within = |v: f64, (lo, hi): (f64, f64)| (lo..=hi).contains(&v);
        self.variants.contains(&c.variant)
            && within(c.deviation_coef, self.deviation_coef)
            && within(c.g1, self.g1)
            && within(c.g2, self.g2)
            && (self.trend_window.0..=self.trend_window.1).contains(&c.trend_window)
            && within(c.epsilon, self.epsilon)
            && within(c.omega_step, self.omega_step)
            && within(c.budget_ms, self.budget_ms)
            && within(c.threshold_mbps, self.threshold_mbps)
    }

    fn sample(&self, rng: &mut SmallRng, (lo, hi): (f64, f64)) -> f64 {
        if lo < hi {
            lo + (hi - lo) * rng.random::<f64>()
        } else {
            lo
        }
    }

    /// Draws a uniform candidate.
    pub fn random(&self, rng: &mut SmallRng) -> Candidate {
        Candidate {
            variant: self.variants[rng.random_range(0..self.variants.len())],
            deviation_coef: self.sample(rng, self.deviation_coef),
            g1: self.sample(rng, self.g1),
            g2: self.sample(rng, self.g2),
            trend_window: rng.random_range(self.trend_window.0..=self.trend_window.1),
            epsilon: self.sample(rng, self.epsilon),
            omega_step: self.sample(rng, self.omega_step),
            majority_probe: rng.random::<bool>(),
            budget_ms: self.sample(rng, self.budget_ms),
            threshold_mbps: self.sample(rng, self.threshold_mbps),
        }
    }

    fn jitter(&self, rng: &mut SmallRng, v: f64, (lo, hi): (f64, f64)) -> f64 {
        let step = (rng.random::<f64>() * 2.0 - 1.0) * MUTATION_SPAN * (hi - lo);
        (v + step).clamp(lo, hi)
    }

    /// Mutates each gene independently with probability `rate`: numeric
    /// genes take a bounded uniform jitter (±25 % of the gene's range,
    /// clamped), categorical genes redraw. The RNG consumption pattern is
    /// fixed per call, so searches replay identically for a given seed.
    pub fn mutate(&self, c: &mut Candidate, rng: &mut SmallRng, rate: f64) {
        // One decision draw per gene, always consumed in the same order.
        if rng.random::<f64>() < rate {
            c.variant = self.variants[rng.random_range(0..self.variants.len())];
        }
        if rng.random::<f64>() < rate {
            c.deviation_coef = self.jitter(rng, c.deviation_coef, self.deviation_coef);
        }
        if rng.random::<f64>() < rate {
            c.g1 = self.jitter(rng, c.g1, self.g1);
        }
        if rng.random::<f64>() < rate {
            c.g2 = self.jitter(rng, c.g2, self.g2);
        }
        if rng.random::<f64>() < rate {
            c.trend_window = rng.random_range(self.trend_window.0..=self.trend_window.1);
        }
        if rng.random::<f64>() < rate {
            c.epsilon = self.jitter(rng, c.epsilon, self.epsilon);
        }
        if rng.random::<f64>() < rate {
            c.omega_step = self.jitter(rng, c.omega_step, self.omega_step);
        }
        if rng.random::<f64>() < rate {
            c.majority_probe = rng.random::<bool>();
        }
        if rng.random::<f64>() < rate {
            c.budget_ms = self.jitter(rng, c.budget_ms, self.budget_ms);
        }
        if rng.random::<f64>() < rate {
            c.threshold_mbps = self.jitter(rng, c.threshold_mbps, self.threshold_mbps);
        }
    }

    /// Uniform crossover: each gene comes from parent `a` or `b` with equal
    /// probability.
    pub fn crossover(&self, a: &Candidate, b: &Candidate, rng: &mut SmallRng) -> Candidate {
        macro_rules! pick {
            ($field:ident) => {
                if rng.random::<bool>() {
                    a.$field
                } else {
                    b.$field
                }
            };
        }
        Candidate {
            variant: pick!(variant),
            deviation_coef: pick!(deviation_coef),
            g1: pick!(g1),
            g2: pick!(g2),
            trend_window: pick!(trend_window),
            epsilon: pick!(epsilon),
            omega_step: pick!(omega_step),
            majority_probe: pick!(majority_probe),
            budget_ms: pick!(budget_ms),
            threshold_mbps: pick!(threshold_mbps),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn paper_default_is_in_default_space() {
        let space = SearchSpace::default();
        space.validate();
        assert!(space.contains(&Candidate::paper_default()));
    }

    #[test]
    fn config_reflects_genes() {
        let mut c = Candidate::paper_default();
        c.deviation_coef = 777.0;
        c.g1 = 3.0;
        c.trend_window = 9;
        c.epsilon = 0.02;
        c.majority_probe = false;
        let cfg = c.config(42);
        assert_eq!(cfg.utility.deviation_coef, 777.0);
        assert_eq!(cfg.rate_control.epsilon, 0.02);
        assert_eq!(cfg.rate_control.probe_rule, ProbeRule::Agreement);
        assert_eq!(cfg.seed, 42);
        match cfg.noise {
            NoiseTolerance::Adaptive(a) => {
                assert_eq!(a.g1, 3.0);
                assert_eq!(a.trend_window, 9);
            }
            _ => panic!("candidate config lost adaptive noise"),
        }
    }

    #[test]
    fn canonical_ignores_unused_genes() {
        let a = Candidate::paper_default();
        let mut b = a;
        b.budget_ms = 99.0; // unused by the Scavenger variant
        b.threshold_mbps = 3.0;
        assert_eq!(a.canonical(), b.canonical());
        let mut c = a;
        c.variant = Variant::DelayBudget;
        let mut d = c;
        d.budget_ms = 99.0; // consumed now
        assert_ne!(c.canonical(), d.canonical());
    }

    #[test]
    fn canonical_is_seed_independent() {
        let c = Candidate::paper_default();
        // Different sim seeds must not split the leaderboard identity.
        assert_eq!(c.canonical(), c.canonical());
        assert!(c.canonical().contains("seed=0"));
    }

    #[test]
    fn operators_stay_in_bounds() {
        let space = SearchSpace::default();
        let mut rng = SmallRng::seed_from_u64(11);
        let mut c = space.random(&mut rng);
        assert!(space.contains(&c));
        for _ in 0..200 {
            space.mutate(&mut c, &mut rng, 0.8);
            assert!(space.contains(&c), "mutation escaped bounds: {c:?}");
        }
        let a = space.random(&mut rng);
        let b = space.random(&mut rng);
        let x = space.crossover(&a, &b, &mut rng);
        assert!(space.contains(&x));
    }

    #[test]
    fn same_seed_same_draws() {
        let space = SearchSpace::default();
        let mut r1 = SmallRng::seed_from_u64(5);
        let mut r2 = SmallRng::seed_from_u64(5);
        for _ in 0..32 {
            assert_eq!(space.random(&mut r1), space.random(&mut r2));
        }
    }
}
