//! Batch candidate evaluation through the campaign runner.
//!
//! [`evaluate_batch`] turns a list of [`Candidate`]s into content-hashed
//! [`SimJob`]s (one pair run per candidate × scenario, plus one shared
//! "primary alone" baseline per scenario), submits them through a
//! [`Campaign`] — so the disk cache, the worker pool and the shard filter
//! all apply — and aggregates the payloads into [`CandidateMetrics`].
//!
//! Job descriptors embed [`Candidate::canonical`], so candidates that
//! behave identically (equal config + mode, any seed or unused genes)
//! share cache entries, and a re-run of the same search is pure cache
//! replay.

use std::path::PathBuf;

use proteus_core::ProteusSender;
use proteus_netsim::{run, FlowSpec, Scenario, SimResult};
use proteus_runner::{payload, Campaign, CampaignOpts, CampaignStats, SimJob};
use proteus_transport::{Dur, Time};

use crate::objective::{CandidateMetrics, Objective};
use crate::scenarios::EvalScenario;
use crate::space::Candidate;

/// Knobs for a tuning run (mirrors the repro CLI flags).
#[derive(Debug, Clone)]
pub struct TuneOpts {
    /// Campaign worker threads (0 → one per core).
    pub jobs: usize,
    /// Result-cache directory; `None` disables caching.
    pub cache: Option<PathBuf>,
    /// Campaign-stats JSONL file, if any.
    pub summary: Option<PathBuf>,
    /// Directory the reports are written into.
    pub out_dir: PathBuf,
    /// Print per-job progress lines.
    pub progress: bool,
    /// Shard filter `(index, count)` forwarded to the campaigns; when set,
    /// the genetic phase is skipped (see [`crate::search::run_search`]).
    pub shard: Option<(u32, u32)>,
    /// Base simulation seed; scenario `i` runs with `sim_seed + i`.
    pub sim_seed: u64,
}

impl Default for TuneOpts {
    fn default() -> Self {
        Self {
            jobs: 0,
            cache: None,
            summary: None,
            out_dir: PathBuf::from("results/tune"),
            progress: false,
            shard: None,
            sim_seed: 1,
        }
    }
}

/// One candidate's aggregated evaluation.
#[derive(Debug, Clone, Copy)]
pub struct CandidateEval {
    /// The evaluated genome.
    pub candidate: Candidate,
    /// Aggregates across the scenario set.
    pub metrics: CandidateMetrics,
    /// Whether every objective constraint holds.
    pub feasible: bool,
    /// Ranking fitness (see [`Objective::score`]).
    pub fitness: f64,
}

/// Scavenger flow start: a quarter into the horizon, so the primary's solo
/// convergence and the contended tail are both visible in the tail window.
fn scav_start(secs: f64) -> Dur {
    Dur::from_secs_f64(secs * 0.25)
}

/// Measurement window: the last 2/3 of the run.
fn tail(res: &SimResult, idx: usize, secs: f64) -> f64 {
    res.flows[idx].throughput_mbps(Time::from_secs_f64(secs / 3.0), Time::from_secs_f64(secs))
}

fn baseline_job(sc: EvalScenario, seed: u64) -> SimJob {
    let descriptor = format!("tune/single/{}/secs={:?}/seed={seed}/v1", sc.tag(), sc.secs);
    SimJob::new(descriptor, format!("{} alone", sc.name), move || {
        let res = run(Scenario::new(sc.link(), Dur::from_secs_f64(sc.secs))
            .flow(FlowSpec::bulk("primary", Dur::ZERO, move || {
                sc.primary_cc()
            }))
            .with_seed(seed)
            .with_rtt_stride(2));
        payload::encode_floats(&[tail(&res, 0, sc.secs)])
    })
}

fn pair_job(sc: EvalScenario, cand: Candidate, seed: u64) -> SimJob {
    let descriptor = format!(
        "tune/pair/{}/cand={}/secs={:?}/seed={seed}/v1",
        sc.tag(),
        cand.canonical(),
        sc.secs
    );
    SimJob::new(
        descriptor,
        format!("{} vs {}", sc.name, cand.variant.name()),
        move || {
            let res = run(Scenario::new(sc.link(), Dur::from_secs_f64(sc.secs))
                .flow(FlowSpec::bulk("primary", Dur::ZERO, move || {
                    sc.primary_cc()
                }))
                .flow(FlowSpec::bulk(
                    "tune-cand",
                    scav_start(sc.secs),
                    move || {
                        // Mode construction happens here, inside the worker: the
                        // hybrid variant's SharedThreshold is deliberately !Send.
                        Box::new(ProteusSender::with_config(
                            cand.config(seed ^ 0x5A),
                            cand.mode(),
                        ))
                    },
                ))
                .with_seed(seed)
                .with_rtt_stride(2));
            payload::encode_floats(&[
                tail(&res, 0, sc.secs),
                tail(&res, 1, sc.secs),
                res.flows[0].rtt_percentile(95.0).unwrap_or(0.0),
            ])
        },
    )
}

/// Evaluates `cands` on every scenario through one campaign named `name`,
/// returning per-candidate aggregates (input order preserved) plus the
/// campaign's execution accounting.
///
/// Under a shard filter, out-of-shard cache misses come back as zero
/// placeholders, so the returned metrics are only meaningful on an
/// unsharded (or fully cached) run — sharded invocations exist to warm the
/// cache in parallel across machines.
pub fn evaluate_batch(
    name: &str,
    cands: &[Candidate],
    scenarios: &[EvalScenario],
    objective: &Objective,
    opts: &TuneOpts,
) -> (Vec<CandidateEval>, CampaignStats) {
    assert!(!scenarios.is_empty(), "tuning needs at least one scenario");
    let mut campaign = Campaign::new(
        name,
        CampaignOpts {
            jobs: opts.jobs,
            cache: opts.cache.clone(),
            progress: opts.progress,
            summary: opts.summary.clone(),
            shard: opts.shard,
        },
    );

    // Baselines first (deduped: every batch of every generation shares
    // them), then one pair cell per candidate × scenario. Identical
    // candidates dedup to one slot via their canonical descriptor.
    let baseline_idx: Vec<usize> = scenarios
        .iter()
        .enumerate()
        .map(|(i, &sc)| campaign.push_dedup(baseline_job(sc, opts.sim_seed + i as u64)))
        .collect();
    let pair_idx: Vec<Vec<usize>> = cands
        .iter()
        .map(|&cand| {
            scenarios
                .iter()
                .enumerate()
                .map(|(i, &sc)| campaign.push_dedup(pair_job(sc, cand, opts.sim_seed + i as u64)))
                .collect()
        })
        .collect();

    let result = campaign.run();
    let alone: Vec<f64> = baseline_idx
        .iter()
        .map(|&i| payload::decode_floats(&result.outputs[i])[0])
        .collect();

    let evals = cands
        .iter()
        .zip(&pair_idx)
        .map(|(&candidate, slots)| {
            let mut m = CandidateMetrics::default();
            for ((&slot, sc), &alone_mbps) in slots.iter().zip(scenarios).zip(&alone) {
                let v = payload::decode_floats(&result.outputs[slot]);
                let (primary, scav, p95) = (v[0], v[1], v[2]);
                m.scav_mbps += scav / scenarios.len() as f64;
                m.scav_util += scav / sc.bw_mbps / scenarios.len() as f64;
                if alone_mbps > 1e-9 {
                    m.harm = m.harm.max((1.0 - primary / alone_mbps).max(0.0));
                }
                m.p95_rtt_s = m.p95_rtt_s.max(p95);
            }
            let (feasible, fitness) = objective.score(&m);
            CandidateEval {
                candidate,
                metrics: m,
                feasible,
                fitness,
            }
        })
        .collect();
    (evals, result.stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenarios::quick_scenarios;

    fn tiny_scenario() -> EvalScenario {
        EvalScenario {
            name: "tiny",
            primary: "CUBIC",
            bw_mbps: 20.0,
            rtt_ms: 20.0,
            buffer_bdp: 1.0,
            secs: 8.0,
        }
    }

    #[test]
    fn descriptors_dedup_identical_behavior() {
        let sc = quick_scenarios()[0];
        let a = Candidate::paper_default();
        let mut b = a;
        b.budget_ms = 99.0; // unused gene — identical behavior
        assert_eq!(pair_job(sc, a, 7).key(), pair_job(sc, b, 7).key());
        let mut c = a;
        c.deviation_coef = 900.0;
        assert_ne!(pair_job(sc, a, 7).key(), pair_job(sc, c, 7).key());
        // Different sim seeds are distinct cells.
        assert_ne!(pair_job(sc, a, 7).key(), pair_job(sc, a, 8).key());
    }

    #[test]
    fn batch_evaluates_scavenger_as_low_harm() {
        let scenarios = [tiny_scenario()];
        let objective = Objective::default_scavenger();
        let cands = [Candidate::paper_default()];
        let opts = TuneOpts {
            jobs: 1,
            ..TuneOpts::default()
        };
        let (evals, stats) = evaluate_batch("tune-test", &cands, &scenarios, &objective, &opts);
        assert_eq!(evals.len(), 1);
        assert_eq!(stats.total, 2); // 1 baseline + 1 pair
        let e = &evals[0];
        assert!(e.metrics.scav_mbps > 0.1, "scavenger moved no data: {e:?}");
        assert!(
            e.metrics.harm < 0.25,
            "paper-default scavenger harms the primary: {e:?}"
        );
        assert!(e.metrics.scav_util > 0.0 && e.metrics.scav_util <= 1.0);
    }

    #[test]
    fn duplicate_candidates_share_jobs() {
        let scenarios = [tiny_scenario()];
        let objective = Objective::parse("maximize scav_mbps").unwrap();
        let cands = [Candidate::paper_default(), Candidate::paper_default()];
        let opts = TuneOpts {
            jobs: 1,
            ..TuneOpts::default()
        };
        let (evals, stats) = evaluate_batch("tune-test", &cands, &scenarios, &objective, &opts);
        assert_eq!(stats.total, 2, "identical candidates must dedup");
        assert_eq!(evals[0].fitness, evals[1].fitness);
    }
}
