//! The fixed evaluation scenarios a tuning run scores candidates on.
//!
//! Each [`EvalScenario`] is one primary/scavenger dumbbell cell: a real
//! primary (CUBIC or BBR) owns the link, the candidate scavenger joins a
//! quarter of the way in, and the objective compares the primary's goodput
//! against its solo baseline on the same link. Scenario sets are small on
//! purpose — every candidate is simulated on *every* scenario, so the set
//! size multiplies the search cost.

use proteus_baselines::{Bbr, Cubic};
use proteus_netsim::LinkSpec;
use proteus_transport::{CongestionControl, Dur};

/// One evaluation cell: a link, a primary protocol and a horizon.
#[derive(Debug, Clone, Copy)]
pub struct EvalScenario {
    /// Short human-readable label used in reports.
    pub name: &'static str,
    /// Primary protocol: `"CUBIC"` or `"BBR"`.
    pub primary: &'static str,
    /// Bottleneck bandwidth, Mbps.
    pub bw_mbps: f64,
    /// Base RTT, milliseconds.
    pub rtt_ms: f64,
    /// Bottleneck buffer, BDPs.
    pub buffer_bdp: f64,
    /// Simulated horizon, seconds.
    pub secs: f64,
}

impl EvalScenario {
    /// The scenario's bottleneck link.
    pub fn link(&self) -> LinkSpec {
        LinkSpec::new(self.bw_mbps, Dur::from_secs_f64(self.rtt_ms / 1e3), 1)
            .with_buffer_bdp(self.buffer_bdp)
    }

    /// Stable cache tag pinning the link and the primary (the horizon is
    /// appended separately by the job descriptors).
    pub fn tag(&self) -> String {
        format!(
            "p={}/bw={:?}/rtt={:?}ms/bdp={:?}",
            self.primary, self.bw_mbps, self.rtt_ms, self.buffer_bdp
        )
    }

    /// Builds the primary's congestion controller.
    ///
    /// # Panics
    /// On an unknown primary name.
    pub fn primary_cc(&self) -> Box<dyn CongestionControl> {
        match self.primary {
            "CUBIC" => Box::new(Cubic::new()),
            "BBR" => Box::new(Bbr::new()),
            other => panic!("unknown tuning primary {other:?}"),
        }
    }
}

/// The `--quick` scenario set: two CUBIC cells, 16 s horizons.
pub fn quick_scenarios() -> Vec<EvalScenario> {
    vec![
        EvalScenario {
            name: "cubic-50M-30ms",
            primary: "CUBIC",
            bw_mbps: 50.0,
            rtt_ms: 30.0,
            buffer_bdp: 2.0,
            secs: 16.0,
        },
        EvalScenario {
            name: "cubic-20M-50ms",
            primary: "CUBIC",
            bw_mbps: 20.0,
            rtt_ms: 50.0,
            buffer_bdp: 1.0,
            secs: 16.0,
        },
    ]
}

/// The full scenario set: the quick cells at 30 s plus a BBR primary.
pub fn full_scenarios() -> Vec<EvalScenario> {
    let mut v = quick_scenarios();
    for s in &mut v {
        s.secs = 30.0;
    }
    v.push(EvalScenario {
        name: "bbr-50M-30ms",
        primary: "BBR",
        bw_mbps: 50.0,
        rtt_ms: 30.0,
        buffer_bdp: 2.0,
        secs: 30.0,
    });
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn links_respect_bdp_buffers() {
        let s = &quick_scenarios()[0];
        let link = s.link();
        // 50 Mbps * 30 ms = 187.5 KB BDP; 2 BDP = 375 KB.
        assert_eq!(link.buffer_bytes, 375_000);
        assert_eq!(link.bandwidth_mbps, 50.0);
    }

    #[test]
    fn tags_distinguish_scenarios() {
        let all = full_scenarios();
        for (i, a) in all.iter().enumerate() {
            for b in &all[i + 1..] {
                assert_ne!(a.tag(), b.tag());
            }
        }
    }

    #[test]
    fn primaries_build() {
        for s in full_scenarios() {
            let _ = s.primary_cc();
        }
    }
}
