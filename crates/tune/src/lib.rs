//! Offline parameter-search and utility-ablation harness for the Proteus
//! reproduction.
//!
//! The paper hand-picks its controller constants (the scavenger penalty
//! `d = 1500`, the §5 gate gains G1/G2, the trend window, the probing
//! ε/ω-step) and motivates its utility shape by argument. This crate turns
//! both into a searchable space and asks the deterministic evaluator the
//! quantitative question directly: *which configuration — and which
//! utility shape — best satisfies a stated objective*, e.g.
//!
//! ```text
//! maximize scav_util subject to harm < 0.05
//! ```
//!
//! # Pipeline
//!
//! 1. [`space`] — the [`Candidate`] genome (config knobs plus utility
//!    [`Variant`]) and its bounded [`SearchSpace`] with deterministic
//!    operators;
//! 2. [`scenarios`] — the fixed primary/scavenger cells candidates are
//!    scored on;
//! 3. [`eval`] — batch evaluation through `proteus-runner` campaigns:
//!    content-hashed jobs, disk cache, shard filter;
//! 4. [`objective`] — the objective grammar and constraint scoring;
//! 5. [`search`] — grid sweep + seeded genetic refinement, same seed ⇒
//!    byte-identical leaderboard at any worker count;
//! 6. [`report`] — `leaderboard.csv`, `frontier.csv`, `best_config.json`.
//!
//! The CLI entry point is `repro tune` (in `proteus-bench`); [`run_tune`]
//! is the library equivalent.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod eval;
pub mod objective;
pub mod report;
pub mod scenarios;
pub mod search;
pub mod space;

pub use eval::{evaluate_batch, CandidateEval, TuneOpts};
pub use objective::{CandidateMetrics, Constraint, Metric, Objective};
pub use report::{best_config_json, frontier_csv, leaderboard_csv, text_report};
pub use scenarios::{full_scenarios, quick_scenarios, EvalScenario};
pub use search::{
    candidate_id, full_spec, grid_candidates, quick_spec, run_search, GridLevels, RankedCandidate,
    SearchOutcome, SearchSpec,
};
pub use space::{Candidate, SearchSpace, Variant};

/// Runs the search described by `spec`, writes `leaderboard.csv`,
/// `frontier.csv` and `best_config.json` into `opts.out_dir`, and returns
/// the human-readable report.
pub fn run_tune(spec: &SearchSpec, opts: &TuneOpts) -> String {
    let outcome = run_search(spec, opts);
    report::write_reports(spec, &outcome, opts)
}
