//! Multi-scenario objectives and the small grammar that declares them.
//!
//! An [`Objective`] is a metric to maximize plus upper-bound constraints,
//! written in a one-line spec such as:
//!
//! ```text
//! maximize scav_util subject to harm < 0.05
//! maximize scav_mbps subject to harm < 0.05 and p95_rtt < 0.2
//! ```
//!
//! Metrics are aggregates over every evaluation scenario (see
//! [`CandidateMetrics`]); `harm` uses the *worst* scenario so a candidate
//! cannot hide damage on one path behind gentleness on another.

use std::fmt;

/// Aggregated measurements of one candidate across its scenario set.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct CandidateMetrics {
    /// Mean scavenger tail goodput across scenarios, Mbps.
    pub scav_mbps: f64,
    /// Mean scavenger tail goodput as a fraction of each scenario's
    /// bottleneck bandwidth (comparable across heterogeneous links).
    pub scav_util: f64,
    /// Primary harm: `max` over scenarios of
    /// `max(0, 1 − primary_with / primary_alone)`.
    pub harm: f64,
    /// Worst primary 95th-percentile RTT across scenarios, seconds.
    pub p95_rtt_s: f64,
}

/// A named scalar over [`CandidateMetrics`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Metric {
    /// `scav_util`: mean scavenger bottleneck utilization.
    ScavUtil,
    /// `scav_mbps`: mean scavenger goodput, Mbps.
    ScavMbps,
    /// `harm`: worst-scenario primary harm fraction.
    Harm,
    /// `p95_rtt`: worst primary p95 RTT, seconds.
    P95Rtt,
}

impl Metric {
    /// Spec-grammar name.
    pub fn name(self) -> &'static str {
        match self {
            Metric::ScavUtil => "scav_util",
            Metric::ScavMbps => "scav_mbps",
            Metric::Harm => "harm",
            Metric::P95Rtt => "p95_rtt",
        }
    }

    fn parse(s: &str) -> Result<Self, String> {
        match s {
            "scav_util" => Ok(Metric::ScavUtil),
            "scav_mbps" => Ok(Metric::ScavMbps),
            "harm" => Ok(Metric::Harm),
            "p95_rtt" => Ok(Metric::P95Rtt),
            other => Err(format!(
                "unknown metric {other:?} (expected scav_util, scav_mbps, harm or p95_rtt)"
            )),
        }
    }

    /// Reads this metric out of a candidate's aggregates.
    pub fn of(self, m: &CandidateMetrics) -> f64 {
        match self {
            Metric::ScavUtil => m.scav_util,
            Metric::ScavMbps => m.scav_mbps,
            Metric::Harm => m.harm,
            Metric::P95Rtt => m.p95_rtt_s,
        }
    }
}

/// An upper bound a candidate must satisfy to be feasible.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Constraint {
    /// Constrained metric.
    pub metric: Metric,
    /// Strict upper bound: feasible iff `metric < max`.
    pub max: f64,
}

/// What the search optimizes: one metric to maximize under constraints.
#[derive(Debug, Clone, PartialEq)]
pub struct Objective {
    /// Maximized metric.
    pub maximize: Metric,
    /// Feasibility constraints (all must hold).
    pub constraints: Vec<Constraint>,
}

impl Objective {
    /// The harness default: maximize scavenger utilization subject to
    /// primary harm < 5 % on every evaluation scenario.
    pub fn default_scavenger() -> Self {
        Self {
            maximize: Metric::ScavUtil,
            constraints: vec![Constraint {
                metric: Metric::Harm,
                max: 0.05,
            }],
        }
    }

    /// Parses a one-line objective spec (see the module docs for the
    /// grammar): `maximize <metric> [subject to <metric> < <value>
    /// [and <metric> < <value>]...]`. Commas may replace `and`.
    pub fn parse(spec: &str) -> Result<Self, String> {
        let cleaned = spec.replace(',', " and ");
        let mut toks = cleaned.split_whitespace().peekable();
        match toks.next() {
            Some("maximize") => {}
            other => return Err(format!("expected 'maximize', got {other:?}")),
        }
        let maximize = Metric::parse(toks.next().ok_or("missing metric to maximize")?)?;
        let mut constraints = Vec::new();
        if toks.peek().is_some() {
            if toks.next() != Some("subject") || toks.next() != Some("to") {
                return Err("expected 'subject to' after the maximized metric".to_string());
            }
            loop {
                let metric = Metric::parse(toks.next().ok_or("missing constraint metric")?)?;
                if toks.next() != Some("<") {
                    return Err(format!("expected '<' after {}", metric.name()));
                }
                let raw = toks.next().ok_or("missing constraint bound")?;
                let max: f64 = raw
                    .parse()
                    .map_err(|_| format!("bad constraint bound {raw:?}"))?;
                constraints.push(Constraint { metric, max });
                match toks.next() {
                    None => break,
                    Some("and") => continue,
                    Some(junk) => return Err(format!("unexpected token {junk:?}")),
                }
            }
        }
        Ok(Self {
            maximize,
            constraints,
        })
    }

    /// Scores a candidate: `(feasible, fitness)`. Feasible candidates get
    /// the maximized metric as fitness; infeasible ones get the *negated
    /// total constraint violation*, so a genetic search still ranks
    /// near-feasible candidates above grossly violating ones. Ranking
    /// compares `feasible` first, then fitness.
    pub fn score(&self, m: &CandidateMetrics) -> (bool, f64) {
        let violation: f64 = self
            .constraints
            .iter()
            .map(|c| (c.metric.of(m) - c.max).max(0.0))
            .sum();
        if violation > 0.0 {
            (false, -violation)
        } else {
            (true, self.maximize.of(m))
        }
    }
}

impl fmt::Display for Objective {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "maximize {}", self.maximize.name())?;
        for (i, c) in self.constraints.iter().enumerate() {
            let sep = if i == 0 { " subject to" } else { " and" };
            write!(f, "{sep} {} < {:?}", c.metric.name(), c.max)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_default_spec_roundtrip() {
        let o = Objective::default_scavenger();
        let parsed = Objective::parse(&o.to_string()).unwrap();
        assert_eq!(parsed, o);
        assert_eq!(o.to_string(), "maximize scav_util subject to harm < 0.05");
    }

    #[test]
    fn parses_multi_constraint() {
        let o = Objective::parse("maximize scav_mbps subject to harm < 0.05 and p95_rtt < 0.2")
            .unwrap();
        assert_eq!(o.maximize, Metric::ScavMbps);
        assert_eq!(o.constraints.len(), 2);
        let c =
            Objective::parse("maximize scav_mbps subject to harm < 0.05, p95_rtt < 0.2").unwrap();
        assert_eq!(c, o);
    }

    #[test]
    fn parses_unconstrained() {
        let o = Objective::parse("maximize scav_util").unwrap();
        assert!(o.constraints.is_empty());
        assert!(o.score(&CandidateMetrics::default()).0);
    }

    #[test]
    fn rejects_malformed_specs() {
        for bad in [
            "",
            "minimize harm",
            "maximize bogus",
            "maximize scav_util subject harm < 0.05",
            "maximize scav_util subject to harm > 0.05",
            "maximize scav_util subject to harm < zebra",
            "maximize scav_util subject to harm < 0.05 nonsense",
        ] {
            assert!(Objective::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn scoring_orders_infeasible_by_violation() {
        let o = Objective::default_scavenger();
        let ok = CandidateMetrics {
            scav_util: 0.6,
            harm: 0.03,
            ..Default::default()
        };
        let near = CandidateMetrics {
            scav_util: 0.9,
            harm: 0.06,
            ..Default::default()
        };
        let far = CandidateMetrics {
            scav_util: 0.95,
            harm: 0.40,
            ..Default::default()
        };
        let (f_ok, s_ok) = o.score(&ok);
        let (f_near, s_near) = o.score(&near);
        let (f_far, s_far) = o.score(&far);
        assert!(f_ok && !f_near && !f_far);
        assert_eq!(s_ok, 0.6);
        assert!(s_near > s_far, "less violation must rank higher");
    }
}
