//! End-to-end determinism guarantees of the tuning harness:
//!
//! * same seed + same cache ⇒ a warm re-run reproduces every artifact
//!   byte-for-byte from the cache,
//! * worker count never changes results (`--jobs 1` ≡ `--jobs 4`),
//! * the genetic operators never escape the declared gene bounds and
//!   always produce constructible sender configs (property-tested).

use std::fs;
use std::path::PathBuf;

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

use proteus_tune::{
    best_config_json, frontier_csv, leaderboard_csv, run_search, Candidate, EvalScenario,
    GridLevels, Objective, SearchSpace, SearchSpec, TuneOpts, Variant,
};

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("proteus-tune-test-{tag}"));
    let _ = fs::remove_dir_all(&dir);
    dir
}

/// A deliberately tiny search (one short scenario, 4-cell grid, 2 small
/// generations) so the cold run stays test-suite friendly.
fn tiny_spec(seed: u64) -> SearchSpec {
    SearchSpec {
        space: SearchSpace {
            variants: vec![Variant::Scavenger, Variant::LossOnly],
            ..SearchSpace::default()
        },
        objective: Objective::default_scavenger(),
        scenarios: vec![EvalScenario {
            name: "tiny",
            primary: "CUBIC",
            bw_mbps: 16.0,
            rtt_ms: 20.0,
            buffer_bdp: 1.0,
            secs: 6.0,
        }],
        grid: GridLevels {
            deviation: 2,
            g1: 1,
            g2: 1,
        },
        pop: 6,
        generations: 2,
        elitism: 1,
        tournament: 2,
        crossover_rate: 0.9,
        mutation_rate: 0.4,
        seed,
    }
}

fn artifacts(spec: &SearchSpec, opts: &TuneOpts) -> (String, String, String, usize, usize) {
    let outcome = run_search(spec, opts);
    (
        leaderboard_csv(&outcome),
        frontier_csv(&outcome),
        best_config_json(spec, &outcome),
        outcome.jobs_executed,
        outcome.jobs_cached,
    )
}

#[test]
fn warm_rerun_is_byte_identical_and_cache_pure() {
    let cache = tmp_dir("warm-cache");
    let spec = tiny_spec(42);
    let opts = TuneOpts {
        jobs: 2,
        cache: Some(cache.clone()),
        out_dir: tmp_dir("warm-out"),
        ..TuneOpts::default()
    };
    let (lb1, fr1, best1, exec1, _) = artifacts(&spec, &opts);
    let (lb2, fr2, best2, exec2, cached2) = artifacts(&spec, &opts);
    assert!(exec1 > 0, "cold run executed nothing");
    assert_eq!(exec2, 0, "warm re-run must be pure cache replay");
    assert!(cached2 > 0);
    assert_eq!(lb1, lb2, "leaderboard changed across identical runs");
    assert_eq!(fr1, fr2, "frontier changed across identical runs");
    assert_eq!(best1, best2, "best_config changed across identical runs");
    let _ = fs::remove_dir_all(&cache);
}

#[test]
fn worker_count_does_not_change_results() {
    let spec = tiny_spec(7);
    let serial = TuneOpts {
        jobs: 1,
        cache: Some(tmp_dir("jobs1-cache")),
        out_dir: tmp_dir("jobs1-out"),
        ..TuneOpts::default()
    };
    let parallel = TuneOpts {
        jobs: 4,
        cache: Some(tmp_dir("jobs4-cache")),
        out_dir: tmp_dir("jobs4-out"),
        ..TuneOpts::default()
    };
    let (lb1, fr1, best1, _, _) = artifacts(&spec, &serial);
    let (lb4, fr4, best4, _, _) = artifacts(&spec, &parallel);
    assert_eq!(lb1, lb4, "--jobs 4 diverged from --jobs 1");
    assert_eq!(fr1, fr4);
    assert_eq!(best1, best4);
    for opts in [&serial, &parallel] {
        if let Some(c) = &opts.cache {
            let _ = fs::remove_dir_all(c);
        }
    }
}

#[test]
fn different_search_seeds_may_differ_but_stay_ranked() {
    // Not a determinism assertion per se: just that another seed still
    // yields a well-formed, fully-ranked board (feasible block first).
    let spec = tiny_spec(1234);
    let opts = TuneOpts {
        jobs: 2,
        cache: Some(tmp_dir("seed-cache")),
        out_dir: tmp_dir("seed-out"),
        ..TuneOpts::default()
    };
    let outcome = run_search(&spec, &opts);
    assert!(!outcome.leaderboard.is_empty());
    let feas: Vec<bool> = outcome
        .leaderboard
        .iter()
        .map(|r| r.eval.feasible)
        .collect();
    let first_infeasible = feas.iter().position(|f| !f).unwrap_or(feas.len());
    assert!(
        feas[first_infeasible..].iter().all(|f| !f),
        "feasible candidates must sort before infeasible ones: {feas:?}"
    );
    if let Some(c) = &opts.cache {
        let _ = fs::remove_dir_all(c);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any chain of mutations/crossovers from any seed stays inside the
    /// declared bounds, and every resulting candidate materializes into a
    /// constructible sender config (trend window within the gate's limit).
    #[test]
    fn operators_never_escape_bounds(seed in any::<u64>(), steps in 1usize..40) {
        let space = SearchSpace::default();
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut c = space.random(&mut rng);
        let mut mate = space.random(&mut rng);
        for _ in 0..steps {
            space.mutate(&mut c, &mut rng, 0.5);
            prop_assert!(space.contains(&c), "mutation escaped: {c:?}");
            c = space.crossover(&c, &mate, &mut rng);
            prop_assert!(space.contains(&c), "crossover escaped: {c:?}");
            std::mem::swap(&mut c, &mut mate);
        }
        let cfg = c.config(7);
        prop_assert!((1..=proteus_core::noise::TREND_WINDOW_MAX)
            .contains(&c.trend_window));
        // Constructing the sender exercises MiNoiseGate's own validation.
        let _ = proteus_core::ProteusSender::with_config(cfg, c.mode());
    }

    /// The paper-default genome perturbed by mutation keeps a stable,
    /// seed-independent canonical identity for unchanged behavior.
    #[test]
    fn canonical_identity_is_seed_independent(sim_seed in any::<u64>()) {
        let c = Candidate::paper_default();
        let base = c.canonical();
        prop_assert_eq!(&base, &c.canonical());
        // Sim seeds enter job descriptors, never the candidate identity.
        let cfg = c.config(sim_seed);
        prop_assert_eq!(cfg.seed, sim_seed);
        prop_assert!(base.contains("seed=0"));
    }
}
