//! Parameters of the Proteus utility functions, rate controller and noise
//! tolerance, with the paper's defaults.

use proteus_transport::Dur;

/// Utility-function parameters (§4.1–§4.3).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UtilityParams {
    /// Throughput exponent `d` in `x^d` (paper default 0.9; must be in
    /// `(0, 1)` for concavity).
    pub exponent: f64,
    /// RTT-gradient coefficient `b` (default 900, sized for up to 1000
    /// competing senders on a ≤1000 Mbps bottleneck).
    pub gradient_coef: f64,
    /// Loss coefficient `c` (default 11.35, tolerating up to 5 % random
    /// loss).
    pub loss_coef: f64,
    /// RTT-deviation coefficient `d` of the scavenger penalty (default 1500,
    /// with deviation measured in seconds).
    pub deviation_coef: f64,
}

impl Default for UtilityParams {
    fn default() -> Self {
        Self {
            exponent: 0.9,
            gradient_coef: 900.0,
            loss_coef: 11.35,
            deviation_coef: 1500.0,
        }
    }
}

/// How probing decisions are made from repeated rate-pair trials (§5
/// "Majority Rule").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProbeRule {
    /// PCC Vivace: two pairs; move only if both agree.
    Agreement,
    /// Proteus: three pairs; move by majority.
    Majority,
}

impl ProbeRule {
    /// Number of rate pairs tried per probing round.
    pub fn pairs(self) -> usize {
        match self {
            ProbeRule::Agreement => 2,
            ProbeRule::Majority => 3,
        }
    }
}

/// Noise-tolerance configuration (§5).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum NoiseTolerance {
    /// PCC Vivace's flat threshold: RTT gradients with magnitude below this
    /// value are ignored.
    FixedThreshold(f64),
    /// Proteus' adaptive mechanisms.
    Adaptive(AdaptiveNoiseParams),
}

/// Parameters of Proteus' adaptive noise tolerance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdaptiveNoiseParams {
    /// Per-ACK filter: consecutive ACK-interval ratio that marks a burst
    /// (paper: 50).
    pub ack_interval_ratio: f64,
    /// Whether the per-MI regression-error gate is active (ablation knob;
    /// the paper always enables it).
    pub per_mi_tolerance: bool,
    /// Number of recent MIs kept for the trending metrics (paper: k = 6).
    pub trend_window: usize,
    /// Whether the trending gates are active (ablation knob).
    pub trending_tolerance: bool,
    /// Gradient gate gain `G1` (paper: 2).
    pub g1: f64,
    /// Deviation gate gain `G2` (paper: 4).
    pub g2: f64,
}

impl Default for AdaptiveNoiseParams {
    fn default() -> Self {
        Self {
            ack_interval_ratio: 50.0,
            per_mi_tolerance: true,
            trend_window: 6,
            trending_tolerance: true,
            g1: 2.0,
            g2: 4.0,
        }
    }
}

/// Rate-controller parameters (PCC Vivace gradient ascent, §3/§5).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RateControlParams {
    /// Probing perturbation ε: pairs test `rate·(1±ε)` (Vivace default 5 %).
    pub epsilon: f64,
    /// Probing decision rule.
    pub probe_rule: ProbeRule,
    /// Gradient-to-rate conversion factor γ (Mbps² per utility unit).
    pub gamma: f64,
    /// Initial dynamic rate-change bound ω₀ (fraction of current rate).
    pub omega_init: f64,
    /// Per-consecutive-step increment of the bound.
    pub omega_step: f64,
    /// Maximum bound.
    pub omega_max: f64,
    /// Initial sending rate, Mbps.
    pub initial_rate_mbps: f64,
    /// Smallest rate the controller will use, Mbps.
    pub min_rate_mbps: f64,
}

impl Default for RateControlParams {
    fn default() -> Self {
        Self {
            epsilon: 0.05,
            probe_rule: ProbeRule::Majority,
            gamma: 1.0,
            omega_init: 0.05,
            omega_step: 0.05,
            omega_max: 0.25,
            initial_rate_mbps: 2.0,
            min_rate_mbps: 0.10,
        }
    }
}

/// Monitor-interval timing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MiParams {
    /// Lower bound on MI duration.
    pub min_duration: Dur,
    /// Upper bound on MI duration.
    pub max_duration: Dur,
}

impl Default for MiParams {
    fn default() -> Self {
        Self {
            min_duration: Dur::from_millis(10),
            max_duration: Dur::from_millis(500),
        }
    }
}

/// Complete configuration of a Proteus (or Vivace) sender.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProteusConfig {
    /// Utility-function coefficients.
    pub utility: UtilityParams,
    /// Rate-controller parameters.
    pub rate_control: RateControlParams,
    /// Noise-tolerance mechanism.
    pub noise: NoiseTolerance,
    /// MI timing.
    pub mi: MiParams,
    /// Seed for the controller's internal randomness (probing order).
    pub seed: u64,
}

impl Default for ProteusConfig {
    fn default() -> Self {
        Self::proteus()
    }
}

impl ProteusConfig {
    /// The paper's Proteus configuration: majority-rule probing and adaptive
    /// noise tolerance.
    pub fn proteus() -> Self {
        Self {
            utility: UtilityParams::default(),
            rate_control: RateControlParams::default(),
            noise: NoiseTolerance::Adaptive(AdaptiveNoiseParams::default()),
            mi: MiParams::default(),
            seed: 7,
        }
    }

    /// PCC Vivace as published: two-pair agreement probing and a flat
    /// gradient threshold (no adaptive tolerance).
    pub fn vivace() -> Self {
        Self {
            utility: UtilityParams::default(),
            rate_control: RateControlParams {
                probe_rule: ProbeRule::Agreement,
                ..RateControlParams::default()
            },
            noise: NoiseTolerance::FixedThreshold(0.01),
            mi: MiParams::default(),
            seed: 7,
        }
    }

    /// Returns a copy with the given RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// A stable one-line serialization of every field, for embedding in
    /// content-hash job descriptors (e.g. `proteus-tune` candidate jobs).
    ///
    /// Two configs render identically iff they are equal: every field is
    /// spelled out, floats use Rust's shortest round-trip `{:?}` form, and
    /// durations render as integer nanoseconds. The format is part of the
    /// result-cache contract — changing it invalidates cached candidate
    /// evaluations (which is exactly what a semantic config change should
    /// do), so extend it only alongside new fields.
    pub fn canonical(&self) -> String {
        let u = &self.utility;
        let r = &self.rate_control;
        let probe = match r.probe_rule {
            ProbeRule::Agreement => "agreement",
            ProbeRule::Majority => "majority",
        };
        let noise = match self.noise {
            NoiseTolerance::FixedThreshold(t) => format!("fixed({t:?})"),
            NoiseTolerance::Adaptive(a) => format!(
                "adaptive(air={:?},permi={},k={},trend={},g1={:?},g2={:?})",
                a.ack_interval_ratio,
                a.per_mi_tolerance,
                a.trend_window,
                a.trending_tolerance,
                a.g1,
                a.g2
            ),
        };
        format!(
            "u(exp={:?},b={:?},c={:?},d={:?})/rc(eps={:?},probe={},gamma={:?},w0={:?},wstep={:?},wmax={:?},x0={:?},xmin={:?})/noise={}/mi({}ns,{}ns)/seed={}",
            u.exponent,
            u.gradient_coef,
            u.loss_coef,
            u.deviation_coef,
            r.epsilon,
            probe,
            r.gamma,
            r.omega_init,
            r.omega_step,
            r.omega_max,
            r.initial_rate_mbps,
            r.min_rate_mbps,
            noise,
            self.mi.min_duration.as_nanos(),
            self.mi.max_duration.as_nanos(),
            self.seed
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let u = UtilityParams::default();
        assert_eq!(u.exponent, 0.9);
        assert_eq!(u.gradient_coef, 900.0);
        assert_eq!(u.loss_coef, 11.35);
        assert_eq!(u.deviation_coef, 1500.0);
        let n = AdaptiveNoiseParams::default();
        assert_eq!(n.ack_interval_ratio, 50.0);
        assert_eq!(n.trend_window, 6);
        assert_eq!(n.g1, 2.0);
        assert_eq!(n.g2, 4.0);
    }

    #[test]
    fn probe_rule_pair_counts() {
        assert_eq!(ProbeRule::Agreement.pairs(), 2);
        assert_eq!(ProbeRule::Majority.pairs(), 3);
    }

    #[test]
    fn canonical_is_injective_on_field_changes() {
        let base = ProteusConfig::proteus();
        assert_eq!(base.canonical(), ProteusConfig::proteus().canonical());
        // Every knob class shows up in the rendering.
        let mut u = base;
        u.utility.deviation_coef = 1501.0;
        assert_ne!(u.canonical(), base.canonical());
        let mut rc = base;
        rc.rate_control.epsilon = 0.051;
        assert_ne!(rc.canonical(), base.canonical());
        let mut n = base;
        n.noise = NoiseTolerance::FixedThreshold(0.01);
        assert_ne!(n.canonical(), base.canonical());
        let mut g = base;
        if let NoiseTolerance::Adaptive(ref mut a) = g.noise {
            a.g1 = 2.5;
        }
        assert_ne!(g.canonical(), base.canonical());
        assert_ne!(base.with_seed(8).canonical(), base.canonical());
        // Vivace differs from Proteus in probe rule and noise mechanism.
        assert_ne!(ProteusConfig::vivace().canonical(), base.canonical());
    }

    #[test]
    fn vivace_config_differs() {
        let v = ProteusConfig::vivace();
        assert_eq!(v.rate_control.probe_rule, ProbeRule::Agreement);
        assert!(matches!(v.noise, NoiseTolerance::FixedThreshold(_)));
        let p = ProteusConfig::proteus();
        assert_eq!(p.rate_control.probe_rule, ProbeRule::Majority);
        assert!(matches!(p.noise, NoiseTolerance::Adaptive(_)));
    }
}
