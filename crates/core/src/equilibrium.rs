//! Game-theoretic equilibrium analysis (Appendix A).
//!
//! The paper models competing Proteus senders on one bottleneck as a
//! non-cooperative game with simplified utilities (loss terms omitted):
//!
//! ```text
//! u_P(x_i) = x_i^d − b·x_i·max(0, (S−C)/C)
//! u_S(x_i) = u_P(x_i) − d_dev·x_i·σ(S)
//! ```
//!
//! with `S` the total rate, `C` capacity and `σ` the RTT deviation of the
//! configuration, `σ = A·|S−C|/C`, where `A ≈ T_MI/√12` is treated as a
//! constant (Appendix A: with an RTT-long MI, `n_i` is linear in `x_i`, so
//! the `MTU/x_i` prefactor cancels).
//!
//! Two modelling notes, reflected in this module:
//!
//! * The static `max(0,·)` game's equilibria form the *boundary face*
//!   `S = C` with every `x_i ≥ x*`, where `x* = (d·C/b)^{1/(2−d)}` is the
//!   rate below which a sender still profits from pushing past capacity —
//!   `b = 900` makes `x* = 1 Mbps` at `C = 1000 Mbps`, which is exactly the
//!   paper's "up to 1000 senders on up to 1000 Mbps" sizing of `b`
//!   ([`GameParams::boundary_min_rate`]).
//! * The *strictness* that separates scavengers from primaries comes from
//!   dynamics the static game ignores: at the boundary, every sender's
//!   ±ε rate probing keeps perturbing the queue, so the configuration's
//!   RTT deviation is never zero once the probe bursts overshoot capacity.
//!   We model that with a probing-aware deviation
//!   `σ(S) = A·max(0, ((1+ε)·S − C)/C)` — zero while even the +ε probe fits
//!   in the pipe, growing with the overshoot — which penalizes only
//!   scavengers: the paper's informal §4.3 argument ("the RTT deviation
//!   term generates larger penalty, and makes the Proteus-S sender
//!   relatively conservative") made quantitative. Setting
//!   [`GameParams::probe_eps`] to zero recovers the static game.
//!
//! [`solve_equilibrium`] runs damped best-response dynamics (ternary search
//! on the concave single-sender utility); the tests verify Theorems
//! 4.1/4.2's fairness and full utilization in the symmetric cases,
//! uniqueness in games with scavengers, and the scavenger-yields property.
//! [`hybrid_ideal_allocation`] implements the §4.4 closed form for two
//! Proteus-H senders.

/// Which utility a player in the game uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SenderKind {
    /// Proteus-P (Eq. 1, simplified).
    Primary,
    /// Proteus-S (Eq. 2, simplified).
    Scavenger,
}

/// Parameters of the simplified Appendix-A game.
#[derive(Debug, Clone, Copy)]
pub struct GameParams {
    /// Throughput exponent `d ∈ (0, 1)`.
    pub exponent: f64,
    /// Gradient coefficient `b`.
    pub gradient_coef: f64,
    /// Deviation coefficient `d_dev`.
    pub deviation_coef: f64,
    /// The deviation constant `A` (seconds), ≈ `T_MI/√12`.
    pub a_const: f64,
    /// Bottleneck capacity, Mbps.
    pub capacity: f64,
    /// Probing perturbation ε of the rate controller (0 = static game).
    pub probe_eps: f64,
}

impl GameParams {
    /// Paper defaults on a given capacity, with a 30 ms monitor interval
    /// and Vivace's ε = 5 % probing.
    pub fn paper_defaults(capacity: f64) -> Self {
        Self {
            exponent: 0.9,
            gradient_coef: 900.0,
            deviation_coef: 1500.0,
            a_const: 0.030 / 12f64.sqrt(),
            capacity,
            probe_eps: 0.05,
        }
    }

    /// The static game's boundary threshold `x* = (d·C/b)^{1/(2−d)}`: on
    /// the `S = C` face, a sender with `x_i < x*` would still profit from
    /// pushing past capacity, so boundary equilibria require `x_i ≥ x*`.
    pub fn boundary_min_rate(&self) -> f64 {
        (self.exponent * self.capacity / self.gradient_coef).powf(1.0 / (2.0 - self.exponent))
    }

    /// RTT deviation of the configuration with total rate `s`, seconds:
    /// the +ε probe bursts start building queue once `(1+ε)·s > C`.
    fn sigma(&self, s: f64) -> f64 {
        let overshoot = ((1.0 + self.probe_eps) * s - self.capacity) / self.capacity;
        self.a_const * overshoot.max(0.0)
    }

    /// Single-sender utility at rate `x` with the others sending `others`.
    pub fn utility(&self, kind: SenderKind, x: f64, others: f64) -> f64 {
        let s = x + others;
        let congestion = ((s - self.capacity) / self.capacity).max(0.0);
        let base = x.powf(self.exponent) - self.gradient_coef * x * congestion;
        match kind {
            SenderKind::Primary => base,
            SenderKind::Scavenger => base - self.deviation_coef * x * self.sigma(s),
        }
    }

    /// Best response of one sender to the others' total rate, by ternary
    /// search on the concave utility.
    pub fn best_response(&self, kind: SenderKind, others: f64) -> f64 {
        let mut lo = 0.0_f64;
        // The utility is decreasing well above capacity; 2·C is a safe
        // upper bracket for any best response.
        let mut hi = 2.0 * self.capacity;
        for _ in 0..200 {
            let m1 = lo + (hi - lo) / 3.0;
            let m2 = hi - (hi - lo) / 3.0;
            if self.utility(kind, m1, others) < self.utility(kind, m2, others) {
                lo = m1;
            } else {
                hi = m2;
            }
        }
        0.5 * (lo + hi)
    }
}

/// Outcome of the best-response dynamics.
#[derive(Debug, Clone)]
pub struct Equilibrium {
    /// Per-sender equilibrium rates, Mbps (same order as the input kinds).
    pub rates: Vec<f64>,
    /// Number of sweeps until convergence.
    pub iterations: usize,
    /// Whether the dynamics converged within the sweep budget.
    pub converged: bool,
}

impl Equilibrium {
    /// Total sending rate.
    pub fn total(&self) -> f64 {
        self.rates.iter().sum()
    }

    /// Link utilization `min(S, C)/C`.
    pub fn utilization(&self, capacity: f64) -> f64 {
        (self.total().min(capacity)) / capacity
    }
}

/// Runs damped best-response dynamics from the given starting rates until
/// the largest per-sender change is below `tol` (relative to capacity).
pub fn solve_equilibrium_from(
    params: &GameParams,
    kinds: &[SenderKind],
    start: &[f64],
    tol: f64,
) -> Equilibrium {
    assert_eq!(kinds.len(), start.len());
    let mut rates = start.to_vec();
    let damping = 0.5;
    let max_sweeps = 20_000;
    for sweep in 0..max_sweeps {
        let mut max_delta = 0.0_f64;
        for i in 0..rates.len() {
            let others: f64 = rates.iter().sum::<f64>() - rates[i];
            let br = params.best_response(kinds[i], others);
            let next = rates[i] + damping * (br - rates[i]);
            max_delta = max_delta.max((next - rates[i]).abs());
            rates[i] = next;
        }
        if max_delta < tol * params.capacity {
            return Equilibrium {
                rates,
                iterations: sweep + 1,
                converged: true,
            };
        }
    }
    Equilibrium {
        rates,
        iterations: max_sweeps,
        converged: false,
    }
}

/// Solves the game from the symmetric interior starting point `C/n`.
pub fn solve_equilibrium(params: &GameParams, kinds: &[SenderKind]) -> Equilibrium {
    let n = kinds.len().max(1) as f64;
    let start = vec![params.capacity / n; kinds.len()];
    solve_equilibrium_from(params, kinds, &start, 1e-7)
}

/// The §4.4 ideal allocation for two Proteus-H senders with switching
/// thresholds `r1 ≤ r2` on a bottleneck of capacity `c`:
///
/// ```text
/// (C/2, C/2)        if C ∈ [0, 2r1)
/// (r1, C − r1)      if C ∈ [2r1, r1 + r2)
/// (C − r2, r2)      if C ∈ [r1 + r2, 2r2)
/// (C/2, C/2)        if C ∈ [2r2, ∞)
/// ```
pub fn hybrid_ideal_allocation(c: f64, r1: f64, r2: f64) -> (f64, f64) {
    assert!(r1 <= r2, "call with r1 <= r2");
    if c < 2.0 * r1 {
        (c / 2.0, c / 2.0)
    } else if c < r1 + r2 {
        (r1, c - r1)
    } else if c < 2.0 * r2 {
        (c - r2, r2)
    } else {
        (c / 2.0, c / 2.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) -> bool {
        (a - b).abs() <= tol
    }

    #[test]
    fn boundary_min_rate_matches_vivace_sizing() {
        // b = 900 on a 1000 Mbps link supports 1000 senders at 1 Mbps each.
        let p = GameParams::paper_defaults(1000.0);
        assert!(close(p.boundary_min_rate(), 1.0, 1e-9));
    }

    #[test]
    fn primary_only_equilibrium_is_fair_and_saturating() {
        let p = GameParams::paper_defaults(100.0);
        let kinds = vec![SenderKind::Primary; 4];
        let eq = solve_equilibrium(&p, &kinds);
        assert!(eq.converged);
        let first = eq.rates[0];
        for &r in &eq.rates {
            assert!(close(r, first, 0.01), "unfair: {:?}", eq.rates);
        }
        // Theorem 4.1: the link is fully utilized.
        assert!(
            eq.utilization(100.0) > 0.99,
            "util = {}",
            eq.utilization(100.0)
        );
        assert!(eq.total() <= 100.0 * 1.10, "total = {}", eq.total());
    }

    #[test]
    fn scavenger_only_equilibrium_is_fair_and_nearly_saturating() {
        let p = GameParams::paper_defaults(100.0);
        let kinds = vec![SenderKind::Scavenger; 3];
        let eq = solve_equilibrium(&p, &kinds);
        assert!(eq.converged);
        // σ's kink at (1+ε)·S = C leaves a sliver of slack, so scavengers
        // end up near-fair rather than exactly fair — mirroring the paper's
        // Fig. 5, where Proteus-S holds a Jain index above 90 % while the
        // primary protocols sit at ~99 %.
        let lo = eq.rates.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = eq.rates.iter().cloned().fold(0.0_f64, f64::max);
        assert!(lo / hi > 0.85, "unfair: {:?}", eq.rates);
        // Theorem 4.2 claims full utilization in the frictionless model;
        // with probing-induced deviation the scavengers stop slightly
        // short of capacity (the Fig.-3 experiments show ≥ 90 %).
        assert!(
            eq.utilization(100.0) > 0.85,
            "util = {}",
            eq.utilization(100.0)
        );
    }

    #[test]
    fn mixed_game_scavenger_yields() {
        let p = GameParams::paper_defaults(100.0);
        let kinds = vec![SenderKind::Primary, SenderKind::Scavenger];
        let eq = solve_equilibrium(&p, &kinds);
        assert!(eq.converged);
        assert!(
            eq.rates[0] > 2.0 * eq.rates[1],
            "scavenger should yield: {:?}",
            eq.rates
        );
        // And the pair still fills the link.
        assert!(eq.utilization(100.0) > 0.95);
    }

    #[test]
    fn unique_equilibrium_from_different_starts() {
        let p = GameParams::paper_defaults(50.0);
        let kinds = vec![
            SenderKind::Primary,
            SenderKind::Scavenger,
            SenderKind::Scavenger,
        ];
        let a = solve_equilibrium_from(&p, &kinds, &[16.0, 16.0, 16.0], 1e-8);
        let b = solve_equilibrium_from(&p, &kinds, &[45.0, 3.0, 2.0], 1e-8);
        assert!(a.converged && b.converged);
        for (x, y) in a.rates.iter().zip(&b.rates) {
            assert!(close(*x, *y, 0.05), "{:?} vs {:?}", a.rates, b.rates);
        }
    }

    #[test]
    fn single_sender_saturates() {
        let p = GameParams::paper_defaults(20.0);
        let eq = solve_equilibrium(&p, &[SenderKind::Primary]);
        assert!(eq.converged);
        assert!(eq.utilization(20.0) > 0.99, "rate = {}", eq.rates[0]);
    }

    #[test]
    fn single_scavenger_nearly_saturates() {
        // Fig. 3(a): a lone Proteus-S still reaches ≥ 90 % utilization.
        let p = GameParams::paper_defaults(50.0);
        let eq = solve_equilibrium(&p, &[SenderKind::Scavenger]);
        assert!(eq.converged);
        assert!(eq.utilization(50.0) > 0.90, "rate = {}", eq.rates[0]);
    }

    #[test]
    fn larger_deviation_coef_widens_the_gap() {
        let base = GameParams::paper_defaults(100.0);
        let mut strong = base;
        strong.deviation_coef = 30_000.0;
        let kinds = vec![SenderKind::Primary, SenderKind::Scavenger];
        let eq_base = solve_equilibrium(&base, &kinds);
        let eq_strong = solve_equilibrium(&strong, &kinds);
        let share_base = eq_base.rates[1] / eq_base.total();
        let share_strong = eq_strong.rates[1] / eq_strong.total();
        assert!(
            share_strong < share_base,
            "stronger penalty should shrink the scavenger share: {share_base} vs {share_strong}"
        );
    }

    #[test]
    fn static_game_has_boundary_equilibria() {
        // With ε = 0 the scavenger penalty vanishes below capacity: any
        // S = C split with x_i ≥ x* is a fixed point, so the asymmetric
        // start stays asymmetric — the uniqueness of the dynamic model
        // genuinely comes from the probing term.
        let mut p = GameParams::paper_defaults(100.0);
        p.probe_eps = 0.0;
        let kinds = vec![SenderKind::Primary, SenderKind::Primary];
        let eq = solve_equilibrium_from(&p, &kinds, &[70.0, 30.0], 1e-8);
        assert!(eq.converged);
        assert!(close(eq.total(), 100.0, 0.5), "total = {}", eq.total());
        assert!(eq.rates[0] > eq.rates[1], "{:?}", eq.rates);
    }

    #[test]
    fn hybrid_allocation_regimes() {
        // C below both thresholds: fair share.
        assert_eq!(hybrid_ideal_allocation(10.0, 10.0, 20.0), (5.0, 5.0));
        // C ∈ [2r1, r1+r2): sender 1 pinned at its threshold.
        assert_eq!(hybrid_ideal_allocation(25.0, 10.0, 20.0), (10.0, 15.0));
        // C ∈ [r1+r2, 2r2): sender 2 pinned at its threshold.
        assert_eq!(hybrid_ideal_allocation(35.0, 10.0, 20.0), (15.0, 20.0));
        // Plenty of capacity: fair share again.
        assert_eq!(hybrid_ideal_allocation(60.0, 10.0, 20.0), (30.0, 30.0));
    }

    #[test]
    fn hybrid_allocation_boundaries() {
        let (a, b) = hybrid_ideal_allocation(20.0, 10.0, 20.0); // C = 2r1
        assert_eq!((a, b), (10.0, 10.0));
        let (a, b) = hybrid_ideal_allocation(30.0, 10.0, 20.0); // C = r1+r2
        assert_eq!((a, b), (10.0, 20.0));
        let (a, b) = hybrid_ideal_allocation(40.0, 10.0, 20.0); // C = 2r2
        assert_eq!((a, b), (20.0, 20.0));
    }

    #[test]
    #[should_panic]
    fn hybrid_allocation_requires_ordered_thresholds() {
        let _ = hybrid_ideal_allocation(10.0, 20.0, 10.0);
    }

    #[test]
    fn best_response_is_interior_when_congested() {
        let p = GameParams::paper_defaults(100.0);
        // With others already at capacity, the best response is small but
        // positive (x^d has infinite slope at 0).
        let br = p.best_response(SenderKind::Scavenger, 100.0);
        assert!(br > 0.0 && br < 20.0, "br = {br}");
        let br_p = p.best_response(SenderKind::Primary, 100.0);
        assert!(br_p > br, "primary responds more aggressively");
    }
}
