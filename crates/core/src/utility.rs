//! The Proteus utility-function library (§4).
//!
//! Four utility functions share one shape, `u(x) = x^d − penalties·x`:
//!
//! * **Vivace** (NSDI'18): penalizes the raw RTT gradient (negative
//!   gradients *reward*) and loss,
//! * **Proteus-P** (Eq. 1): like Vivace but negative RTT gradient is
//!   ignored (the paper found rewarding it slows convergence),
//! * **Proteus-S** (Eq. 2): Proteus-P minus `d·x·σ(RTT)` — the RTT
//!   *deviation* penalty that makes the sender yield to competing flows,
//! * **Proteus-H** (Eq. 3): piecewise — Proteus-P below an
//!   application-controlled rate threshold, Proteus-S above it.
//!
//! The hybrid threshold is shared with the application through a
//! [`SharedThreshold`] cell so cross-layer policies (e.g. the video rules of
//! §4.4) can retune it mid-flow; "there is no explicit switch in the control
//! algorithm; it happens implicitly, simply by comparing utility values of
//! different sending rates."

use std::cell::Cell;
use std::rc::Rc;

use crate::config::UtilityParams;

/// A rate threshold (Mbit/sec) shared between an application and a
/// Proteus-H sender. `f64::INFINITY` makes Proteus-H behave as pure
/// Proteus-P; `0.0` as pure Proteus-S.
#[derive(Debug, Clone)]
pub struct SharedThreshold(Rc<Cell<f64>>);

impl SharedThreshold {
    /// Creates a threshold cell with an initial value in Mbps.
    pub fn new(mbps: f64) -> Self {
        Self(Rc::new(Cell::new(mbps)))
    }

    /// Reads the current threshold, Mbps.
    pub fn get(&self) -> f64 {
        self.0.get()
    }

    /// Updates the threshold, Mbps.
    pub fn set(&self, mbps: f64) {
        self.0.set(mbps);
    }
}

/// Which utility function a sender is currently optimizing.
#[derive(Debug, Clone)]
pub enum Mode {
    /// PCC Allegro's loss-based sigmoid utility (NSDI'15) — latency-blind.
    Allegro,
    /// PCC Vivace's published utility (raw gradient).
    Vivace,
    /// Proteus-P: primary mode (Eq. 1).
    Primary,
    /// Proteus-S: scavenger mode (Eq. 2).
    Scavenger,
    /// Proteus-H: hybrid mode with an adaptive threshold (Eq. 3).
    Hybrid(SharedThreshold),
}

impl Mode {
    /// Display name used in reports.
    pub fn name(&self) -> &'static str {
        match self {
            Mode::Allegro => "PCC-Allegro",
            Mode::Vivace => "PCC-Vivace",
            Mode::Primary => "Proteus-P",
            Mode::Scavenger => "Proteus-S",
            Mode::Hybrid(_) => "Proteus-H",
        }
    }
}

/// The per-MI measurements a utility function consumes, after noise
/// processing.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MiObservation {
    /// Sending rate of the MI, Mbit/sec.
    pub rate_mbps: f64,
    /// Packet loss rate in `[0, 1]`.
    pub loss_rate: f64,
    /// RTT gradient `d(RTT)/dt`, dimensionless (possibly zeroed by the
    /// noise gates).
    pub rtt_gradient: f64,
    /// RTT standard deviation, seconds (possibly zeroed).
    pub rtt_deviation: f64,
}

/// Evaluates Eq. 1's Proteus-P utility.
pub fn utility_primary(p: &UtilityParams, o: &MiObservation) -> f64 {
    let x = o.rate_mbps.max(0.0);
    x.powf(p.exponent)
        - p.gradient_coef * x * o.rtt_gradient.max(0.0)
        - p.loss_coef * x * o.loss_rate
}

/// Evaluates PCC Vivace's published utility (raw gradient, both signs).
pub fn utility_vivace(p: &UtilityParams, o: &MiObservation) -> f64 {
    let x = o.rate_mbps.max(0.0);
    x.powf(p.exponent) - p.gradient_coef * x * o.rtt_gradient - p.loss_coef * x * o.loss_rate
}

/// Evaluates Eq. 2's Proteus-S utility.
pub fn utility_scavenger(p: &UtilityParams, o: &MiObservation) -> f64 {
    utility_primary(p, o) - p.deviation_coef * o.rate_mbps.max(0.0) * o.rtt_deviation
}

/// Evaluates PCC Allegro's loss-based utility (NSDI'15):
/// `u = x·(1−L)·sigmoid(α·(0.05−L)) − x·L`, α = 100 — throughput rewarded
/// until loss approaches the 5 % cliff, no latency terms at all. Included
/// as the PCC-family ancestor for ablations (the paper's §8 notes Allegro
/// "uses a loss-based utility function, and also suffers from bufferbloat").
pub fn utility_allegro(_p: &UtilityParams, o: &MiObservation) -> f64 {
    let x = o.rate_mbps.max(0.0);
    let l = o.loss_rate;
    let sig = 1.0 / (1.0 + (-100.0 * (0.05 - l)).exp());
    x * (1.0 - l) * sig - x * l
}

/// Whether Eq. 3's piecewise rule selects the scavenger terms for this rate:
/// `rate < threshold` is strictly primary, everything else (including NaN
/// thresholds) scavenger. Shared between [`utility_hybrid`] and the sender's
/// implicit mode-switch detection so the trace can never disagree with the
/// utility actually evaluated.
pub fn hybrid_uses_scavenger(rate_mbps: f64, threshold_mbps: f64) -> bool {
    rate_mbps.partial_cmp(&threshold_mbps) != Some(std::cmp::Ordering::Less)
}

/// Evaluates Eq. 3's Proteus-H utility for a given threshold (Mbps).
pub fn utility_hybrid(p: &UtilityParams, o: &MiObservation, threshold_mbps: f64) -> f64 {
    if hybrid_uses_scavenger(o.rate_mbps, threshold_mbps) {
        utility_scavenger(p, o)
    } else {
        utility_primary(p, o)
    }
}

/// Evaluates the utility for the given mode.
pub fn evaluate(mode: &Mode, p: &UtilityParams, o: &MiObservation) -> f64 {
    match mode {
        Mode::Allegro => utility_allegro(p, o),
        Mode::Vivace => utility_vivace(p, o),
        Mode::Primary => utility_primary(p, o),
        Mode::Scavenger => utility_scavenger(p, o),
        Mode::Hybrid(th) => utility_hybrid(p, o, th.get()),
    }
}

/// A utility value decomposed into its additive terms (for decision traces).
///
/// Invariant: `utility` equals
/// `term_rate − term_gradient − term_loss − term_deviation` evaluated in
/// that association order, bitwise identical to what [`evaluate`] returns
/// for the same inputs — [`evaluate_terms`] is the single implementation
/// and `evaluate` is checked against it in tests.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UtilityTerms {
    /// The utility value (what the controller optimizes).
    pub utility: f64,
    /// Throughput reward `x^d` (Allegro: `x·(1−L)·sigmoid`).
    pub term_rate: f64,
    /// Latency-gradient penalty `b·x·grad` as subtracted (negative when
    /// Vivace rewards a falling RTT).
    pub term_gradient: f64,
    /// Loss penalty `c·x·L` (Allegro: `x·L`).
    pub term_loss: f64,
    /// RTT-deviation penalty `d·x·σ(RTT)` (zero outside scavenger terms).
    pub term_deviation: f64,
    /// Name of the term set actually applied — differs from the mode name
    /// only for Proteus-H, where it reports which side of the threshold
    /// rule fired (`"Proteus-P"` or `"Proteus-S"`).
    pub effective: &'static str,
}

/// Evaluates the utility for the given mode with its per-term breakdown.
pub fn evaluate_terms(mode: &Mode, p: &UtilityParams, o: &MiObservation) -> UtilityTerms {
    let x = o.rate_mbps.max(0.0);
    match mode {
        Mode::Allegro => {
            let l = o.loss_rate;
            let sig = 1.0 / (1.0 + (-100.0 * (0.05 - l)).exp());
            let term_rate = x * (1.0 - l) * sig;
            let term_loss = x * l;
            UtilityTerms {
                utility: term_rate - term_loss,
                term_rate,
                term_gradient: 0.0,
                term_loss,
                term_deviation: 0.0,
                effective: "PCC-Allegro",
            }
        }
        Mode::Vivace => {
            let term_rate = x.powf(p.exponent);
            let term_gradient = p.gradient_coef * x * o.rtt_gradient;
            let term_loss = p.loss_coef * x * o.loss_rate;
            UtilityTerms {
                utility: term_rate - term_gradient - term_loss,
                term_rate,
                term_gradient,
                term_loss,
                term_deviation: 0.0,
                effective: "PCC-Vivace",
            }
        }
        Mode::Primary => primary_terms(p, o, "Proteus-P"),
        Mode::Scavenger => scavenger_terms(p, o, "Proteus-S"),
        Mode::Hybrid(th) => {
            if hybrid_uses_scavenger(o.rate_mbps, th.get()) {
                scavenger_terms(p, o, "Proteus-S")
            } else {
                primary_terms(p, o, "Proteus-P")
            }
        }
    }
}

fn primary_terms(p: &UtilityParams, o: &MiObservation, effective: &'static str) -> UtilityTerms {
    let x = o.rate_mbps.max(0.0);
    let term_rate = x.powf(p.exponent);
    let term_gradient = p.gradient_coef * x * o.rtt_gradient.max(0.0);
    let term_loss = p.loss_coef * x * o.loss_rate;
    UtilityTerms {
        utility: term_rate - term_gradient - term_loss,
        term_rate,
        term_gradient,
        term_loss,
        term_deviation: 0.0,
        effective,
    }
}

fn scavenger_terms(p: &UtilityParams, o: &MiObservation, effective: &'static str) -> UtilityTerms {
    let base = primary_terms(p, o, effective);
    let term_deviation = p.deviation_coef * o.rate_mbps.max(0.0) * o.rtt_deviation;
    UtilityTerms {
        utility: base.utility - term_deviation,
        term_deviation,
        ..base
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> UtilityParams {
        UtilityParams::default()
    }

    fn obs(rate: f64) -> MiObservation {
        MiObservation {
            rate_mbps: rate,
            loss_rate: 0.0,
            rtt_gradient: 0.0,
            rtt_deviation: 0.0,
        }
    }

    #[test]
    fn clean_network_utility_is_throughput_power() {
        let p = params();
        let o = obs(10.0);
        let expect = 10f64.powf(0.9);
        assert!((utility_primary(&p, &o) - expect).abs() < 1e-12);
        assert!((utility_scavenger(&p, &o) - expect).abs() < 1e-12);
        assert!((utility_vivace(&p, &o) - expect).abs() < 1e-12);
    }

    #[test]
    fn positive_gradient_penalizes() {
        let p = params();
        let mut o = obs(10.0);
        o.rtt_gradient = 0.01;
        let u = utility_primary(&p, &o);
        assert!(u < utility_primary(&p, &obs(10.0)));
        // b·x·grad = 900·10·0.01 = 90.
        assert!((utility_primary(&p, &obs(10.0)) - u - 90.0).abs() < 1e-9);
    }

    #[test]
    fn negative_gradient_ignored_by_proteus_rewarded_by_vivace() {
        let p = params();
        let mut o = obs(10.0);
        o.rtt_gradient = -0.01;
        assert_eq!(utility_primary(&p, &o), utility_primary(&p, &obs(10.0)));
        assert!(utility_vivace(&p, &o) > utility_vivace(&p, &obs(10.0)));
    }

    #[test]
    fn loss_coefficient_tolerates_5_percent() {
        // At the design point, marginal utility of rate should stay positive
        // for L = 5% random loss: d/dx (x^0.9 - 11.35·x·0.05) > 0 for
        // moderate x.
        let p = params();
        let mut lo = obs(10.0);
        lo.loss_rate = 0.05;
        let mut hi = obs(10.5);
        hi.loss_rate = 0.05;
        assert!(utility_primary(&p, &hi) > utility_primary(&p, &lo));
        // ...but 10% loss makes more rate worse at x = 10.
        let mut lo2 = obs(10.0);
        lo2.loss_rate = 0.10;
        let mut hi2 = obs(10.5);
        hi2.loss_rate = 0.10;
        assert!(utility_primary(&p, &hi2) < utility_primary(&p, &lo2));
    }

    #[test]
    fn deviation_only_penalizes_scavenger() {
        let p = params();
        let mut o = obs(10.0);
        o.rtt_deviation = 0.001; // 1 ms
        assert_eq!(utility_primary(&p, &o), utility_primary(&p, &obs(10.0)));
        let u_s = utility_scavenger(&p, &o);
        // d·x·σ = 1500·10·0.001 = 15.
        assert!((utility_scavenger(&p, &obs(10.0)) - u_s - 15.0).abs() < 1e-9);
    }

    #[test]
    fn hybrid_switches_at_threshold() {
        let p = params();
        let mut o = obs(10.0);
        o.rtt_deviation = 0.002;
        // Below threshold: primary (deviation ignored).
        assert_eq!(utility_hybrid(&p, &o, 20.0), utility_primary(&p, &o));
        // Above threshold: scavenger (deviation penalized).
        assert_eq!(utility_hybrid(&p, &o, 5.0), utility_scavenger(&p, &o));
        // Exactly at threshold counts as scavenger (x < threshold is strict).
        assert_eq!(utility_hybrid(&p, &o, 10.0), utility_scavenger(&p, &o));
    }

    #[test]
    fn shared_threshold_propagates() {
        let th = SharedThreshold::new(f64::INFINITY);
        let mode = Mode::Hybrid(th.clone());
        let p = params();
        let mut o = obs(10.0);
        o.rtt_deviation = 0.002;
        // Infinite threshold: pure primary.
        assert_eq!(evaluate(&mode, &p, &o), utility_primary(&p, &o));
        th.set(0.0);
        assert_eq!(evaluate(&mode, &p, &o), utility_scavenger(&p, &o));
    }

    #[test]
    fn concavity_in_own_rate_numerically() {
        // Second difference of u(x) must be negative across a rate sweep
        // (the Appendix-A concavity requirement, exercised numerically).
        let p = params();
        for grad in [0.0, 0.005, 0.02] {
            for base in [1.0f64, 10.0, 100.0] {
                let u = |x: f64| {
                    let mut o = obs(x);
                    o.rtt_gradient = grad;
                    utility_primary(&p, &o)
                };
                let h = base * 0.01;
                let second = u(base + h) - 2.0 * u(base) + u(base - h);
                assert!(second < 0.0, "not concave at x={base}, grad={grad}");
            }
        }
    }

    #[test]
    fn allegro_is_latency_blind_with_a_loss_cliff() {
        let p = params();
        let mut o = obs(10.0);
        o.rtt_gradient = 0.05;
        o.rtt_deviation = 0.01;
        // Latency terms ignored entirely.
        assert_eq!(utility_allegro(&p, &o), utility_allegro(&p, &obs(10.0)));
        // Below the 5% knee utility is ~x; beyond it, strongly negative
        // marginal value.
        let mut low = obs(10.0);
        low.loss_rate = 0.01;
        let mut high = obs(10.0);
        high.loss_rate = 0.09;
        assert!(utility_allegro(&p, &low) > 0.8 * 10.0);
        assert!(utility_allegro(&p, &high) < 0.0);
    }

    #[test]
    fn evaluate_terms_matches_evaluate_bitwise() {
        let p = params();
        let th = SharedThreshold::new(10.0);
        let modes = [
            Mode::Allegro,
            Mode::Vivace,
            Mode::Primary,
            Mode::Scavenger,
            Mode::Hybrid(th),
        ];
        for mode in &modes {
            for rate in [0.5, 9.9, 10.0, 42.0] {
                for grad in [-0.02, 0.0, 0.01] {
                    let o = MiObservation {
                        rate_mbps: rate,
                        loss_rate: 0.03,
                        rtt_gradient: grad,
                        rtt_deviation: 0.002,
                    };
                    let t = evaluate_terms(mode, &p, &o);
                    // Bitwise identical to the scalar path, and the terms
                    // recompose exactly in the documented association order.
                    assert_eq!(t.utility, evaluate(mode, &p, &o), "{}", mode.name());
                    assert_eq!(
                        t.utility,
                        t.term_rate - t.term_gradient - t.term_loss - t.term_deviation
                    );
                }
            }
        }
    }

    #[test]
    fn evaluate_terms_reports_effective_hybrid_side() {
        let p = params();
        let th = SharedThreshold::new(10.0);
        let mode = Mode::Hybrid(th);
        let mut o = obs(5.0);
        o.rtt_deviation = 0.002;
        assert_eq!(evaluate_terms(&mode, &p, &o).effective, "Proteus-P");
        o.rate_mbps = 10.0; // at-threshold is scavenger (strict less-than)
        assert_eq!(evaluate_terms(&mode, &p, &o).effective, "Proteus-S");
        assert!(hybrid_uses_scavenger(10.0, 10.0));
        assert!(!hybrid_uses_scavenger(9.99, 10.0));
    }

    #[test]
    fn mode_names() {
        assert_eq!(Mode::Allegro.name(), "PCC-Allegro");
        assert_eq!(Mode::Vivace.name(), "PCC-Vivace");
        assert_eq!(Mode::Primary.name(), "Proteus-P");
        assert_eq!(Mode::Scavenger.name(), "Proteus-S");
        assert_eq!(Mode::Hybrid(SharedThreshold::new(1.0)).name(), "Proteus-H");
    }
}
