//! The Proteus utility-function library (§4), as sealed plug-ins.
//!
//! Six utility functions share one shape, `u(x) = x^d − penalties·x`:
//!
//! * **Allegro** (NSDI'15): loss-based sigmoid utility — latency-blind,
//! * **Vivace** (NSDI'18): penalizes the raw RTT gradient (negative
//!   gradients *reward*) and loss,
//! * **Proteus-P** (Eq. 1): like Vivace but negative RTT gradient is
//!   ignored (the paper found rewarding it slows convergence),
//! * **Proteus-S** (Eq. 2): Proteus-P minus `d·x·σ(RTT)` — the RTT
//!   *deviation* penalty that makes the sender yield to competing flows,
//! * **Loss-Only**: Proteus-P with every latency term removed — the
//!   Allegro/Vivace-style ablation showing that coefficients alone cannot
//!   produce scavenging; the *shape* of the utility is the design surface,
//! * **Delay-Budget**: penalizes absolute RTT beyond a budget (à la
//!   D'Aronco's delay-constrained utilities) instead of RTT deviation.
//!
//! Proteus-H (Eq. 3) is not a seventh function but a *composition*: it is
//! piecewise Proteus-P below an application-controlled rate threshold and
//! Proteus-S above it. The threshold is shared with the application through
//! a [`SharedThreshold`] cell so cross-layer policies (e.g. the video rules
//! of §4.4) can retune it mid-flow; "there is no explicit switch in the
//! control algorithm; it happens implicitly, simply by comparing utility
//! values of different sending rates."
//!
//! # Why a *sealed* trait?
//!
//! Each function is a unit struct (or param-carrying struct) implementing
//! [`UtilityFunction`], but the trait is sealed: the set of utilities is
//! closed at compile time and dispatch happens through the [`Mode`] enum,
//! never through `Box<dyn UtilityFunction>`. That keeps the per-ACK /
//! per-MI control path fully monomorphized and allocation-free (see the
//! counting-allocator test in `tests/alloc_free.rs`) while still giving
//! tools like `proteus-tune` a uniform surface to enumerate and ablate.

use std::cell::Cell;
use std::rc::Rc;

use crate::config::UtilityParams;

/// A rate threshold (Mbit/sec) shared between an application and a
/// Proteus-H sender. `f64::INFINITY` makes Proteus-H behave as pure
/// Proteus-P; `0.0` as pure Proteus-S.
#[derive(Debug, Clone)]
pub struct SharedThreshold(Rc<Cell<f64>>);

impl SharedThreshold {
    /// Creates a threshold cell with an initial value in Mbps.
    pub fn new(mbps: f64) -> Self {
        Self(Rc::new(Cell::new(mbps)))
    }

    /// Reads the current threshold, Mbps.
    pub fn get(&self) -> f64 {
        self.0.get()
    }

    /// Updates the threshold, Mbps.
    pub fn set(&self, mbps: f64) {
        self.0.set(mbps);
    }
}

/// Parameters of the [`DelayBudget`] utility variant.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DelayBudgetParams {
    /// RTT budget in seconds; RTTs at or below this are free.
    pub budget_s: f64,
    /// Penalty coefficient `w` applied as `w·x·max(0, RTT − budget)`.
    pub over_coef: f64,
}

impl Default for DelayBudgetParams {
    fn default() -> Self {
        Self {
            // 60 ms: double the paper's 30 ms testbed base RTT, i.e. one
            // base-RTT's worth of queueing allowance.
            budget_s: 0.060,
            // Same scale as the deviation coefficient `d` (both multiply
            // rate × seconds).
            over_coef: 1500.0,
        }
    }
}

/// Which utility function a sender is currently optimizing.
#[derive(Debug, Clone)]
pub enum Mode {
    /// PCC Allegro's loss-based sigmoid utility (NSDI'15) — latency-blind.
    Allegro,
    /// PCC Vivace's published utility (raw gradient).
    Vivace,
    /// Proteus-P: primary mode (Eq. 1).
    Primary,
    /// Proteus-S: scavenger mode (Eq. 2).
    Scavenger,
    /// Proteus-H: hybrid mode with an adaptive threshold (Eq. 3).
    Hybrid(SharedThreshold),
    /// Loss-only ablation: Proteus-P without latency terms.
    LossOnly,
    /// Delay-budget scavenger: absolute-RTT budget instead of deviation.
    DelayBudget(DelayBudgetParams),
}

impl Mode {
    /// Display name used in reports.
    pub fn name(&self) -> &'static str {
        match self {
            Mode::Allegro => "PCC-Allegro",
            Mode::Vivace => "PCC-Vivace",
            Mode::Primary => "Proteus-P",
            Mode::Scavenger => "Proteus-S",
            Mode::Hybrid(_) => "Proteus-H",
            Mode::LossOnly => "Loss-Only",
            Mode::DelayBudget(_) => "Delay-Budget",
        }
    }
}

/// The per-MI measurements a utility function consumes, after noise
/// processing.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MiObservation {
    /// Sending rate of the MI, Mbit/sec.
    pub rate_mbps: f64,
    /// Packet loss rate in `[0, 1]`.
    pub loss_rate: f64,
    /// RTT gradient `d(RTT)/dt`, dimensionless (possibly zeroed by the
    /// noise gates).
    pub rtt_gradient: f64,
    /// RTT standard deviation, seconds (possibly zeroed).
    pub rtt_deviation: f64,
    /// Mean RTT of the MI, seconds — raw (never noise-gated; the gates act
    /// on derivatives, not levels). Zero when the MI carried no RTT
    /// samples. Only the [`DelayBudget`] variant consumes it.
    pub rtt_s: f64,
}

mod sealed {
    /// Seals [`super::UtilityFunction`]: only this crate's utility structs
    /// may implement it.
    pub trait Sealed {}
}

/// A pluggable utility function, `u(x) = reward(x) − penalties(x)`.
///
/// The trait is **sealed** — the implementor set is fixed at compile time
/// (see the module docs for why). Every implementor must keep
/// [`UtilityFunction::evaluate`] bitwise identical to
/// `self.terms(p, o).utility`; the provided method guarantees that by
/// construction, and the composition invariant
/// `utility == term_rate − term_gradient − term_loss − term_deviation`
/// (evaluated in that association order) is covered by tests.
pub trait UtilityFunction: sealed::Sealed {
    /// Display name of the term set this function applies.
    fn label(&self) -> &'static str;

    /// The utility value with its per-term breakdown.
    fn terms(&self, p: &UtilityParams, o: &MiObservation) -> UtilityTerms;

    /// The scalar utility value (what the controller optimizes).
    fn evaluate(&self, p: &UtilityParams, o: &MiObservation) -> f64 {
        self.terms(p, o).utility
    }
}

/// PCC Allegro's loss-based utility (NSDI'15):
/// `u = x·(1−L)·sigmoid(α·(0.05−L)) − x·L`, α = 100 — throughput rewarded
/// until loss approaches the 5 % cliff, no latency terms at all. Included
/// as the PCC-family ancestor for ablations (the paper's §8 notes Allegro
/// "uses a loss-based utility function, and also suffers from bufferbloat").
#[derive(Debug, Clone, Copy, Default)]
pub struct Allegro;

impl sealed::Sealed for Allegro {}
impl UtilityFunction for Allegro {
    fn label(&self) -> &'static str {
        "PCC-Allegro"
    }

    fn terms(&self, _p: &UtilityParams, o: &MiObservation) -> UtilityTerms {
        let x = o.rate_mbps.max(0.0);
        let l = o.loss_rate;
        let sig = 1.0 / (1.0 + (-100.0 * (0.05 - l)).exp());
        let term_rate = x * (1.0 - l) * sig;
        let term_loss = x * l;
        UtilityTerms {
            utility: term_rate - term_loss,
            term_rate,
            term_gradient: 0.0,
            term_loss,
            term_deviation: 0.0,
            effective: self.label(),
        }
    }
}

/// PCC Vivace's published utility (raw gradient, both signs).
#[derive(Debug, Clone, Copy, Default)]
pub struct Vivace;

impl sealed::Sealed for Vivace {}
impl UtilityFunction for Vivace {
    fn label(&self) -> &'static str {
        "PCC-Vivace"
    }

    fn terms(&self, p: &UtilityParams, o: &MiObservation) -> UtilityTerms {
        let x = o.rate_mbps.max(0.0);
        let term_rate = x.powf(p.exponent);
        let term_gradient = p.gradient_coef * x * o.rtt_gradient;
        let term_loss = p.loss_coef * x * o.loss_rate;
        UtilityTerms {
            utility: term_rate - term_gradient - term_loss,
            term_rate,
            term_gradient,
            term_loss,
            term_deviation: 0.0,
            effective: self.label(),
        }
    }
}

/// Eq. 1's Proteus-P utility (primary mode).
#[derive(Debug, Clone, Copy, Default)]
pub struct Primary;

impl Primary {
    fn terms_as(
        &self,
        p: &UtilityParams,
        o: &MiObservation,
        effective: &'static str,
    ) -> UtilityTerms {
        let x = o.rate_mbps.max(0.0);
        let term_rate = x.powf(p.exponent);
        let term_gradient = p.gradient_coef * x * o.rtt_gradient.max(0.0);
        let term_loss = p.loss_coef * x * o.loss_rate;
        UtilityTerms {
            utility: term_rate - term_gradient - term_loss,
            term_rate,
            term_gradient,
            term_loss,
            term_deviation: 0.0,
            effective,
        }
    }
}

impl sealed::Sealed for Primary {}
impl UtilityFunction for Primary {
    fn label(&self) -> &'static str {
        "Proteus-P"
    }

    fn terms(&self, p: &UtilityParams, o: &MiObservation) -> UtilityTerms {
        self.terms_as(p, o, self.label())
    }
}

/// Eq. 2's Proteus-S utility (scavenger mode).
#[derive(Debug, Clone, Copy, Default)]
pub struct Scavenger;

impl sealed::Sealed for Scavenger {}
impl UtilityFunction for Scavenger {
    fn label(&self) -> &'static str {
        "Proteus-S"
    }

    fn terms(&self, p: &UtilityParams, o: &MiObservation) -> UtilityTerms {
        let base = Primary.terms_as(p, o, self.label());
        let term_deviation = p.deviation_coef * o.rate_mbps.max(0.0) * o.rtt_deviation;
        UtilityTerms {
            utility: base.utility - term_deviation,
            term_deviation,
            ..base
        }
    }
}

/// Loss-only ablation: Eq. 1 with both latency terms removed,
/// `u = x^d − c·x·L`. The Allegro/Vivace-style "loss is the only
/// congestion signal" shape — useful for showing that no coefficient
/// setting of a latency-blind utility can scavenge.
#[derive(Debug, Clone, Copy, Default)]
pub struct LossOnly;

impl sealed::Sealed for LossOnly {}
impl UtilityFunction for LossOnly {
    fn label(&self) -> &'static str {
        "Loss-Only"
    }

    fn terms(&self, p: &UtilityParams, o: &MiObservation) -> UtilityTerms {
        let x = o.rate_mbps.max(0.0);
        let term_rate = x.powf(p.exponent);
        let term_loss = p.loss_coef * x * o.loss_rate;
        UtilityTerms {
            utility: term_rate - term_loss,
            term_rate,
            term_gradient: 0.0,
            term_loss,
            term_deviation: 0.0,
            effective: self.label(),
        }
    }
}

/// Delay-budget scavenger (à la D'Aronco's delay-constrained utilities):
/// `u = x^d − b·x·max(0, grad) − c·x·L − w·x·max(0, RTT − budget)`.
/// Where Proteus-S keys on RTT *deviation* (relative competition signal),
/// this keys on the *absolute* RTT level against a budget — yielding only
/// once standing queues push the path past the budget. The over-budget
/// penalty is reported in [`UtilityTerms::term_deviation`].
#[derive(Debug, Clone, Copy, Default)]
pub struct DelayBudget(pub DelayBudgetParams);

impl sealed::Sealed for DelayBudget {}
impl UtilityFunction for DelayBudget {
    fn label(&self) -> &'static str {
        "Delay-Budget"
    }

    fn terms(&self, p: &UtilityParams, o: &MiObservation) -> UtilityTerms {
        let base = Primary.terms_as(p, o, self.label());
        let over = (o.rtt_s - self.0.budget_s).max(0.0);
        let term_deviation = self.0.over_coef * o.rate_mbps.max(0.0) * over;
        UtilityTerms {
            utility: base.utility - term_deviation,
            term_deviation,
            ..base
        }
    }
}

/// Evaluates Eq. 1's Proteus-P utility.
pub fn utility_primary(p: &UtilityParams, o: &MiObservation) -> f64 {
    Primary.evaluate(p, o)
}

/// Evaluates PCC Vivace's published utility (raw gradient, both signs).
pub fn utility_vivace(p: &UtilityParams, o: &MiObservation) -> f64 {
    Vivace.evaluate(p, o)
}

/// Evaluates Eq. 2's Proteus-S utility.
pub fn utility_scavenger(p: &UtilityParams, o: &MiObservation) -> f64 {
    Scavenger.evaluate(p, o)
}

/// Evaluates PCC Allegro's loss-based utility (see [`Allegro`]).
pub fn utility_allegro(p: &UtilityParams, o: &MiObservation) -> f64 {
    Allegro.evaluate(p, o)
}

/// Evaluates the loss-only ablation utility (see [`LossOnly`]).
pub fn utility_loss_only(p: &UtilityParams, o: &MiObservation) -> f64 {
    LossOnly.evaluate(p, o)
}

/// Evaluates the delay-budget utility (see [`DelayBudget`]).
pub fn utility_delay_budget(p: &UtilityParams, o: &MiObservation, b: &DelayBudgetParams) -> f64 {
    DelayBudget(*b).evaluate(p, o)
}

/// Whether Eq. 3's piecewise rule selects the scavenger terms for this rate:
/// `rate < threshold` is strictly primary, everything else (including NaN
/// thresholds) scavenger. Shared between [`utility_hybrid`] and the sender's
/// implicit mode-switch detection so the trace can never disagree with the
/// utility actually evaluated.
pub fn hybrid_uses_scavenger(rate_mbps: f64, threshold_mbps: f64) -> bool {
    rate_mbps.partial_cmp(&threshold_mbps) != Some(std::cmp::Ordering::Less)
}

/// Evaluates Eq. 3's Proteus-H utility for a given threshold (Mbps).
pub fn utility_hybrid(p: &UtilityParams, o: &MiObservation, threshold_mbps: f64) -> f64 {
    if hybrid_uses_scavenger(o.rate_mbps, threshold_mbps) {
        utility_scavenger(p, o)
    } else {
        utility_primary(p, o)
    }
}

/// Evaluates the utility for the given mode.
pub fn evaluate(mode: &Mode, p: &UtilityParams, o: &MiObservation) -> f64 {
    match mode {
        Mode::Allegro => Allegro.evaluate(p, o),
        Mode::Vivace => Vivace.evaluate(p, o),
        Mode::Primary => Primary.evaluate(p, o),
        Mode::Scavenger => Scavenger.evaluate(p, o),
        Mode::Hybrid(th) => utility_hybrid(p, o, th.get()),
        Mode::LossOnly => LossOnly.evaluate(p, o),
        Mode::DelayBudget(b) => DelayBudget(*b).evaluate(p, o),
    }
}

/// A utility value decomposed into its additive terms (for decision traces).
///
/// Invariant: `utility` equals
/// `term_rate − term_gradient − term_loss − term_deviation` evaluated in
/// that association order, bitwise identical to what [`evaluate`] returns
/// for the same inputs — each plug-in's [`UtilityFunction::terms`] is the
/// single implementation and `evaluate` is checked against it in tests.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UtilityTerms {
    /// The utility value (what the controller optimizes).
    pub utility: f64,
    /// Throughput reward `x^d` (Allegro: `x·(1−L)·sigmoid`).
    pub term_rate: f64,
    /// Latency-gradient penalty `b·x·grad` as subtracted (negative when
    /// Vivace rewards a falling RTT).
    pub term_gradient: f64,
    /// Loss penalty `c·x·L` (Allegro: `x·L`).
    pub term_loss: f64,
    /// RTT-deviation penalty `d·x·σ(RTT)` (Delay-Budget: the over-budget
    /// penalty `w·x·max(0, RTT − budget)`; zero outside scavenger-style
    /// terms).
    pub term_deviation: f64,
    /// Name of the term set actually applied — differs from the mode name
    /// only for Proteus-H, where it reports which side of the threshold
    /// rule fired (`"Proteus-P"` or `"Proteus-S"`).
    pub effective: &'static str,
}

/// Evaluates the utility for the given mode with its per-term breakdown.
pub fn evaluate_terms(mode: &Mode, p: &UtilityParams, o: &MiObservation) -> UtilityTerms {
    match mode {
        Mode::Allegro => Allegro.terms(p, o),
        Mode::Vivace => Vivace.terms(p, o),
        Mode::Primary => Primary.terms(p, o),
        Mode::Scavenger => Scavenger.terms(p, o),
        Mode::Hybrid(th) => {
            if hybrid_uses_scavenger(o.rate_mbps, th.get()) {
                Scavenger.terms(p, o)
            } else {
                Primary.terms(p, o)
            }
        }
        Mode::LossOnly => LossOnly.terms(p, o),
        Mode::DelayBudget(b) => DelayBudget(*b).terms(p, o),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> UtilityParams {
        UtilityParams::default()
    }

    fn obs(rate: f64) -> MiObservation {
        MiObservation {
            rate_mbps: rate,
            loss_rate: 0.0,
            rtt_gradient: 0.0,
            rtt_deviation: 0.0,
            rtt_s: 0.0,
        }
    }

    #[test]
    fn clean_network_utility_is_throughput_power() {
        let p = params();
        let o = obs(10.0);
        let expect = 10f64.powf(0.9);
        assert!((utility_primary(&p, &o) - expect).abs() < 1e-12);
        assert!((utility_scavenger(&p, &o) - expect).abs() < 1e-12);
        assert!((utility_vivace(&p, &o) - expect).abs() < 1e-12);
        assert!((utility_loss_only(&p, &o) - expect).abs() < 1e-12);
        let b = DelayBudgetParams::default();
        assert!((utility_delay_budget(&p, &o, &b) - expect).abs() < 1e-12);
    }

    #[test]
    fn positive_gradient_penalizes() {
        let p = params();
        let mut o = obs(10.0);
        o.rtt_gradient = 0.01;
        let u = utility_primary(&p, &o);
        assert!(u < utility_primary(&p, &obs(10.0)));
        // b·x·grad = 900·10·0.01 = 90.
        assert!((utility_primary(&p, &obs(10.0)) - u - 90.0).abs() < 1e-9);
    }

    #[test]
    fn negative_gradient_ignored_by_proteus_rewarded_by_vivace() {
        let p = params();
        let mut o = obs(10.0);
        o.rtt_gradient = -0.01;
        assert_eq!(utility_primary(&p, &o), utility_primary(&p, &obs(10.0)));
        assert!(utility_vivace(&p, &o) > utility_vivace(&p, &obs(10.0)));
    }

    #[test]
    fn loss_coefficient_tolerates_5_percent() {
        // At the design point, marginal utility of rate should stay positive
        // for L = 5% random loss: d/dx (x^0.9 - 11.35·x·0.05) > 0 for
        // moderate x.
        let p = params();
        let mut lo = obs(10.0);
        lo.loss_rate = 0.05;
        let mut hi = obs(10.5);
        hi.loss_rate = 0.05;
        assert!(utility_primary(&p, &hi) > utility_primary(&p, &lo));
        // ...but 10% loss makes more rate worse at x = 10.
        let mut lo2 = obs(10.0);
        lo2.loss_rate = 0.10;
        let mut hi2 = obs(10.5);
        hi2.loss_rate = 0.10;
        assert!(utility_primary(&p, &hi2) < utility_primary(&p, &lo2));
    }

    #[test]
    fn deviation_only_penalizes_scavenger() {
        let p = params();
        let mut o = obs(10.0);
        o.rtt_deviation = 0.001; // 1 ms
        assert_eq!(utility_primary(&p, &o), utility_primary(&p, &obs(10.0)));
        let u_s = utility_scavenger(&p, &o);
        // d·x·σ = 1500·10·0.001 = 15.
        assert!((utility_scavenger(&p, &obs(10.0)) - u_s - 15.0).abs() < 1e-9);
    }

    #[test]
    fn loss_only_is_latency_blind() {
        let p = params();
        let mut o = obs(10.0);
        o.rtt_gradient = 0.05;
        o.rtt_deviation = 0.01;
        o.rtt_s = 0.4;
        // All latency signals ignored; only loss moves it.
        assert_eq!(utility_loss_only(&p, &o), utility_loss_only(&p, &obs(10.0)));
        let mut lossy = obs(10.0);
        lossy.loss_rate = 0.05;
        // c·x·L = 11.35·10·0.05 = 5.675.
        let drop = utility_loss_only(&p, &obs(10.0)) - utility_loss_only(&p, &lossy);
        assert!((drop - 5.675).abs() < 1e-9);
    }

    #[test]
    fn delay_budget_penalizes_only_over_budget_rtt() {
        let p = params();
        let b = DelayBudgetParams::default(); // 60 ms budget, w = 1500
        let mut under = obs(10.0);
        under.rtt_s = 0.050;
        assert_eq!(
            utility_delay_budget(&p, &under, &b),
            utility_delay_budget(&p, &obs(10.0), &b)
        );
        let mut over = obs(10.0);
        over.rtt_s = 0.080; // 20 ms over budget
        let u = utility_delay_budget(&p, &over, &b);
        // w·x·over = 1500·10·0.020 = 300.
        assert!((utility_delay_budget(&p, &obs(10.0), &b) - u - 300.0).abs() < 1e-9);
        // ...and unlike Proteus-S, RTT deviation alone is ignored.
        let mut dev = obs(10.0);
        dev.rtt_deviation = 0.01;
        assert_eq!(
            utility_delay_budget(&p, &dev, &b),
            utility_delay_budget(&p, &obs(10.0), &b)
        );
    }

    #[test]
    fn hybrid_switches_at_threshold() {
        let p = params();
        let mut o = obs(10.0);
        o.rtt_deviation = 0.002;
        // Below threshold: primary (deviation ignored).
        assert_eq!(utility_hybrid(&p, &o, 20.0), utility_primary(&p, &o));
        // Above threshold: scavenger (deviation penalized).
        assert_eq!(utility_hybrid(&p, &o, 5.0), utility_scavenger(&p, &o));
        // Exactly at threshold counts as scavenger (x < threshold is strict).
        assert_eq!(utility_hybrid(&p, &o, 10.0), utility_scavenger(&p, &o));
    }

    #[test]
    fn shared_threshold_propagates() {
        let th = SharedThreshold::new(f64::INFINITY);
        let mode = Mode::Hybrid(th.clone());
        let p = params();
        let mut o = obs(10.0);
        o.rtt_deviation = 0.002;
        // Infinite threshold: pure primary.
        assert_eq!(evaluate(&mode, &p, &o), utility_primary(&p, &o));
        th.set(0.0);
        assert_eq!(evaluate(&mode, &p, &o), utility_scavenger(&p, &o));
    }

    #[test]
    fn concavity_in_own_rate_numerically() {
        // Second difference of u(x) must be negative across a rate sweep
        // (the Appendix-A concavity requirement, exercised numerically).
        let p = params();
        for grad in [0.0, 0.005, 0.02] {
            for base in [1.0f64, 10.0, 100.0] {
                let u = |x: f64| {
                    let mut o = obs(x);
                    o.rtt_gradient = grad;
                    utility_primary(&p, &o)
                };
                let h = base * 0.01;
                let second = u(base + h) - 2.0 * u(base) + u(base - h);
                assert!(second < 0.0, "not concave at x={base}, grad={grad}");
            }
        }
    }

    #[test]
    fn allegro_is_latency_blind_with_a_loss_cliff() {
        let p = params();
        let mut o = obs(10.0);
        o.rtt_gradient = 0.05;
        o.rtt_deviation = 0.01;
        // Latency terms ignored entirely.
        assert_eq!(utility_allegro(&p, &o), utility_allegro(&p, &obs(10.0)));
        // Below the 5% knee utility is ~x; beyond it, strongly negative
        // marginal value.
        let mut low = obs(10.0);
        low.loss_rate = 0.01;
        let mut high = obs(10.0);
        high.loss_rate = 0.09;
        assert!(utility_allegro(&p, &low) > 0.8 * 10.0);
        assert!(utility_allegro(&p, &high) < 0.0);
    }

    #[test]
    fn evaluate_terms_matches_evaluate_bitwise() {
        let p = params();
        let th = SharedThreshold::new(10.0);
        let modes = [
            Mode::Allegro,
            Mode::Vivace,
            Mode::Primary,
            Mode::Scavenger,
            Mode::Hybrid(th),
            Mode::LossOnly,
            Mode::DelayBudget(DelayBudgetParams::default()),
        ];
        for mode in &modes {
            for rate in [0.5, 9.9, 10.0, 42.0] {
                for grad in [-0.02, 0.0, 0.01] {
                    let o = MiObservation {
                        rate_mbps: rate,
                        loss_rate: 0.03,
                        rtt_gradient: grad,
                        rtt_deviation: 0.002,
                        rtt_s: 0.071,
                    };
                    let t = evaluate_terms(mode, &p, &o);
                    // Bitwise identical to the scalar path, and the terms
                    // recompose exactly in the documented association order.
                    assert_eq!(t.utility, evaluate(mode, &p, &o), "{}", mode.name());
                    assert_eq!(
                        t.utility,
                        t.term_rate - t.term_gradient - t.term_loss - t.term_deviation
                    );
                }
            }
        }
    }

    #[test]
    fn evaluate_terms_reports_effective_hybrid_side() {
        let p = params();
        let th = SharedThreshold::new(10.0);
        let mode = Mode::Hybrid(th);
        let mut o = obs(5.0);
        o.rtt_deviation = 0.002;
        assert_eq!(evaluate_terms(&mode, &p, &o).effective, "Proteus-P");
        o.rate_mbps = 10.0; // at-threshold is scavenger (strict less-than)
        assert_eq!(evaluate_terms(&mode, &p, &o).effective, "Proteus-S");
        assert!(hybrid_uses_scavenger(10.0, 10.0));
        assert!(!hybrid_uses_scavenger(9.99, 10.0));
    }

    #[test]
    fn mode_names() {
        assert_eq!(Mode::Allegro.name(), "PCC-Allegro");
        assert_eq!(Mode::Vivace.name(), "PCC-Vivace");
        assert_eq!(Mode::Primary.name(), "Proteus-P");
        assert_eq!(Mode::Scavenger.name(), "Proteus-S");
        assert_eq!(Mode::Hybrid(SharedThreshold::new(1.0)).name(), "Proteus-H");
        assert_eq!(Mode::LossOnly.name(), "Loss-Only");
        assert_eq!(
            Mode::DelayBudget(DelayBudgetParams::default()).name(),
            "Delay-Budget"
        );
    }

    #[test]
    fn plugin_labels_match_mode_names() {
        assert_eq!(Allegro.label(), Mode::Allegro.name());
        assert_eq!(Vivace.label(), Mode::Vivace.name());
        assert_eq!(Primary.label(), Mode::Primary.name());
        assert_eq!(Scavenger.label(), Mode::Scavenger.name());
        assert_eq!(LossOnly.label(), Mode::LossOnly.name());
        assert_eq!(DelayBudget::default().label(), "Delay-Budget");
    }
}
