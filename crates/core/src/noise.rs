//! Latency-noise tolerance (§5).
//!
//! Proteus' scavenger utility is deliberately sensitive to RTT dynamics, so
//! non-congestion noise (WiFi MAC scheduling, channel variation) would make
//! it back off for no reason. Three mechanisms defend against that:
//!
//! 1. **Per-ACK RTT sample filtering** ([`AckIntervalFilter`]): when the
//!    ratio between two consecutive ACK inter-arrival intervals exceeds a
//!    threshold (50), the reception is a burst — all RTT samples are
//!    dropped until one falls below the exponentially weighted moving RTT
//!    average.
//! 2. **Per-MI regression-error tolerance**: if the magnitude of the MI's
//!    RTT gradient is smaller than the normalized RMS residual of its own
//!    linear fit, the gradient is statistically meaningless — both it and
//!    the RTT deviation are zeroed.
//! 3. **MI-history trending tolerance**: the mean RTT and RTT deviation of
//!    the last k = 6 MIs yield a *trending gradient* (least-squares slope
//!    over the stored means) and *trending deviation* (std-dev of the
//!    stored deviations). Each is tracked with a kernel-style EWMA +
//!    mean-deviation estimator; a fresh sample several deviations away from
//!    its average (G1 = 2 for the gradient, G2 = 4 for the deviation) is
//!    statistically unlikely to be noise and **cannot be ignored**.
//!
//! Interpretation note: the paper's §5 pseudocode zeroes the per-MI metrics
//! when the trending sample is *within* its noise band, and the prose says
//! trending exists so that a slow-but-persistent RTT increase (hidden by
//! mechanism 2) still triggers a reaction. We therefore implement the
//! trending gate as an *override*: a signal suppressed by the per-MI gate is
//! restored when its trending metric is significant, and a signal the
//! per-MI gate kept is never suppressed by the trending gate. This
//! satisfies both of the paper's stated goals (saturate a stable bottleneck;
//! keep latency sensitivity against slow inflation).

use proteus_stats::{LinearRegression, MeanDeviationTracker, Welford};
use proteus_transport::{AckInfo, Dur, MiStats, Time};

use crate::config::{AdaptiveNoiseParams, NoiseTolerance};

/// Per-ACK burst filter (§5 "RTT Sample Filtering").
#[derive(Debug, Clone)]
pub struct AckIntervalFilter {
    ratio_threshold: f64,
    last_ack_at: Option<Time>,
    last_interval: Option<Dur>,
    /// When `true`, RTT samples are dropped until one dips below the moving
    /// average.
    filtering: bool,
    /// EWMA of accepted RTT samples, seconds.
    rtt_avg: Option<f64>,
    /// Counters for diagnostics.
    dropped: u64,
    accepted: u64,
}

impl AckIntervalFilter {
    /// Creates a filter with the given interval-ratio threshold (paper: 50).
    pub fn new(ratio_threshold: f64) -> Self {
        Self {
            ratio_threshold,
            last_ack_at: None,
            last_interval: None,
            filtering: false,
            rtt_avg: None,
            dropped: 0,
            accepted: 0,
        }
    }

    /// Processes one ACK; returns `true` when its RTT sample should feed the
    /// latency metrics.
    pub fn on_ack(&mut self, ack: &AckInfo) -> bool {
        let now = ack.recv_at;
        let rtt_s = ack.rtt.as_secs_f64();

        let interval = self.last_ack_at.map(|t| now.since(t));
        self.last_ack_at = Some(now);

        if let (Some(prev), Some(cur)) = (self.last_interval, interval) {
            let a = prev.as_secs_f64().max(1e-9);
            let b = cur.as_secs_f64().max(1e-9);
            let ratio = if a > b { a / b } else { b / a };
            if ratio > self.ratio_threshold {
                self.filtering = true;
            }
        }
        if let Some(cur) = interval {
            self.last_interval = Some(cur);
        }

        if self.filtering {
            // Resume once an RTT at or below the moving average appears.
            match self.rtt_avg {
                Some(avg) if rtt_s <= avg => self.filtering = false,
                _ => {
                    self.dropped += 1;
                    return false;
                }
            }
        }

        // EWMA over accepted samples (1/8 gain, like srtt).
        self.rtt_avg = Some(match self.rtt_avg {
            None => rtt_s,
            Some(avg) => avg + (rtt_s - avg) / 8.0,
        });
        self.accepted += 1;
        true
    }

    /// Whether the filter is currently dropping samples.
    pub fn is_filtering(&self) -> bool {
        self.filtering
    }

    /// (accepted, dropped) sample counts.
    pub fn counts(&self) -> (u64, u64) {
        (self.accepted, self.dropped)
    }
}

/// Outcome of noise-processing one MI.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GatedMetrics {
    /// RTT gradient after gating (zeroed when judged noise).
    pub rtt_gradient: f64,
    /// RTT deviation after gating.
    pub rtt_deviation: f64,
    /// Whether the per-MI regression-error gate fired.
    pub per_mi_gated: bool,
    /// Whether the trending gate restored the gradient.
    pub trend_restored_gradient: bool,
    /// Whether the trending gate restored the deviation.
    pub trend_restored_deviation: bool,
}

/// Per-MI noise gate: either Vivace's flat threshold or Proteus' adaptive
/// per-MI + trending mechanisms.
//
// The Adaptive variant inlines the fixed trending ring on purpose: the gate
// lives once per flow and is consulted on the per-ACK/per-MI hot path, so
// the footprint buys zero allocation and no pointer chase (boxing it would
// reintroduce an indirection exactly where it hurts).
#[allow(clippy::large_enum_variant)]
#[derive(Debug)]
pub enum MiNoiseGate {
    /// Flat |gradient| threshold (PCC Vivace).
    Fixed {
        /// The threshold below which gradients are zeroed.
        threshold: f64,
    },
    /// Proteus' adaptive gates.
    Adaptive(AdaptiveGate),
}

/// Upper bound on the configurable trending window (§5 uses k = 6). The
/// gate keeps its MI history in a fixed `[_; TREND_WINDOW_MAX]` ring so
/// processing an MI never allocates.
pub const TREND_WINDOW_MAX: usize = 16;

/// State of the adaptive (Proteus) gate.
#[derive(Debug)]
pub struct AdaptiveGate {
    params: AdaptiveNoiseParams,
    /// `(mi_mean_rtt, mi_rtt_dev)` of the most recent k MIs, as a ring over
    /// the first `params.trend_window` slots of a fixed array.
    history: [(f64, f64); TREND_WINDOW_MAX],
    /// Valid entries in `history` (saturates at `params.trend_window`).
    hist_len: usize,
    /// Next ring write position; once saturated, also the oldest entry.
    hist_pos: usize,
    trend_grad_tracker: MeanDeviationTracker,
    trend_dev_tracker: MeanDeviationTracker,
}

impl MiNoiseGate {
    /// Builds the gate from a configuration.
    ///
    /// # Panics
    /// Panics when an adaptive configuration asks for a trending window
    /// outside `1..=TREND_WINDOW_MAX`.
    pub fn new(cfg: NoiseTolerance) -> Self {
        match cfg {
            NoiseTolerance::FixedThreshold(threshold) => MiNoiseGate::Fixed { threshold },
            NoiseTolerance::Adaptive(params) => {
                assert!(
                    (1..=TREND_WINDOW_MAX).contains(&params.trend_window),
                    "trend_window {} outside 1..={TREND_WINDOW_MAX}",
                    params.trend_window
                );
                MiNoiseGate::Adaptive(AdaptiveGate {
                    params,
                    history: [(0.0, 0.0); TREND_WINDOW_MAX],
                    hist_len: 0,
                    hist_pos: 0,
                    trend_grad_tracker: MeanDeviationTracker::kernel_style(),
                    trend_dev_tracker: MeanDeviationTracker::kernel_style(),
                })
            }
        }
    }

    /// Applies the gate to a completed MI's latency metrics.
    pub fn process(&mut self, mi: &MiStats) -> GatedMetrics {
        match self {
            MiNoiseGate::Fixed { threshold } => {
                let keep = mi.rtt_gradient.abs() >= *threshold;
                GatedMetrics {
                    rtt_gradient: if keep { mi.rtt_gradient } else { 0.0 },
                    rtt_deviation: mi.rtt_dev,
                    per_mi_gated: !keep,
                    trend_restored_gradient: false,
                    trend_restored_deviation: false,
                }
            }
            MiNoiseGate::Adaptive(gate) => gate.process(mi),
        }
    }
}

impl AdaptiveGate {
    fn process(&mut self, mi: &MiStats) -> GatedMetrics {
        // Stage 1: per-MI regression-error tolerance.
        let per_mi_gated =
            self.params.per_mi_tolerance && mi.rtt_gradient.abs() < mi.gradient_error;

        // Stage 2: trending metrics over the last k MIs. The history is a
        // fixed ring; materializing the window chronologically into a stack
        // buffer keeps the fit bit-identical to the old collect-a-Vec code
        // without its per-MI allocation.
        let k = self.params.trend_window;
        self.history[self.hist_pos] = (mi.rtt_mean, mi.rtt_dev);
        self.hist_pos = (self.hist_pos + 1) % k;
        self.hist_len = (self.hist_len + 1).min(k);

        let mut grad_significant = false;
        let mut dev_significant = false;
        if self.params.trending_tolerance && self.hist_len == k {
            let mut points = [(0.0, 0.0); TREND_WINDOW_MAX];
            let mut dev_acc = Welford::new();
            for (j, slot) in points.iter_mut().enumerate().take(k) {
                // Oldest entry sits at hist_pos once the ring is saturated.
                let (mean, dev) = self.history[(self.hist_pos + j) % k];
                *slot = (j as f64 + 1.0, mean);
                dev_acc.add(dev);
            }
            let trending_gradient = LinearRegression::fit(&points[..k])
                .map(|f| f.slope)
                .unwrap_or(0.0);
            let trending_deviation = dev_acc.std_dev();

            // Compare against the running averages *before* absorbing the
            // new samples, then update.
            grad_significant = !self
                .trend_grad_tracker
                .within_band(trending_gradient, self.params.g1);
            dev_significant = !self
                .trend_dev_tracker
                .below_band(trending_deviation, self.params.g2);
            self.trend_grad_tracker.update(trending_gradient);
            self.trend_dev_tracker.update(trending_deviation);
        }

        let keep_gradient = !per_mi_gated || grad_significant;
        let keep_deviation = !per_mi_gated || dev_significant;
        GatedMetrics {
            rtt_gradient: if keep_gradient { mi.rtt_gradient } else { 0.0 },
            rtt_deviation: if keep_deviation { mi.rtt_dev } else { 0.0 },
            per_mi_gated,
            trend_restored_gradient: per_mi_gated && grad_significant,
            trend_restored_deviation: per_mi_gated && dev_significant,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::NoiseTolerance;

    fn ack_at(ms: u64, rtt_ms: u64) -> AckInfo {
        AckInfo {
            seq: 0,
            bytes: 1500,
            sent_at: Time::from_millis(ms.saturating_sub(rtt_ms)),
            recv_at: Time::from_millis(ms),
            rtt: Dur::from_millis(rtt_ms),
            one_way_delay: Dur::from_millis(rtt_ms / 2),
        }
    }

    fn mi(gradient: f64, error: f64, dev: f64, mean: f64) -> MiStats {
        MiStats {
            id: 0,
            start: Time::ZERO,
            end: Time::from_millis(30),
            target_rate: 1e6,
            bytes_sent: 30_000,
            bytes_acked: 30_000,
            bytes_lost: 0,
            pkts_sent: 20,
            pkts_acked: 20,
            pkts_lost: 0,
            throughput: 1e6,
            send_rate: 1e6,
            loss_rate: 0.0,
            rtt_mean: mean,
            rtt_dev: dev,
            rtt_gradient: gradient,
            gradient_error: error,
            rtt_samples: 20,
            rtt_min: mean - dev,
            rtt_max: mean + dev,
        }
    }

    #[test]
    fn ack_filter_passes_smooth_stream() {
        let mut f = AckIntervalFilter::new(50.0);
        for i in 0..100 {
            assert!(f.on_ack(&ack_at(100 + i, 30)), "sample {i} dropped");
        }
        assert_eq!(f.counts().1, 0);
    }

    #[test]
    fn ack_filter_drops_after_burst_until_rtt_normalizes() {
        let mut f = AckIntervalFilter::new(50.0);
        // Smooth 1ms spacing establishes the EWMA at ~30ms.
        for i in 0..50 {
            f.on_ack(&ack_at(100 + i, 30));
        }
        // 200ms silence then a burst with 0.1ms spacing and inflated RTTs:
        // interval ratio 200/0.1 = 2000 > 50.
        let burst_start = 350;
        // The gap ACK itself already trips the interval-ratio trigger, and
        // its inflated RTT keeps it filtered.
        assert!(!f.on_ack(&ack_at(burst_start, 90)));
        let mut dropped = 0;
        for i in 1..10 {
            let a = AckInfo {
                recv_at: Time::from_nanos(burst_start * 1_000_000 + i * 100_000),
                ..ack_at(burst_start, 90)
            };
            if !f.on_ack(&a) {
                dropped += 1;
            }
        }
        assert!(dropped >= 8, "dropped = {dropped}");
        assert!(f.is_filtering());
        // An RTT back at the average ends the episode.
        assert!(f.on_ack(&ack_at(burst_start + 50, 29)));
        assert!(!f.is_filtering());
    }

    #[test]
    fn fixed_gate_zeroes_small_gradients_only() {
        let mut g = MiNoiseGate::new(NoiseTolerance::FixedThreshold(0.01));
        let out = g.process(&mi(0.005, 0.0, 0.002, 0.03));
        assert_eq!(out.rtt_gradient, 0.0);
        assert!(out.per_mi_gated);
        let out = g.process(&mi(0.05, 0.0, 0.002, 0.03));
        assert_eq!(out.rtt_gradient, 0.05);
        // Fixed gate never touches deviation (Vivace doesn't use it).
        assert_eq!(out.rtt_deviation, 0.002);
    }

    #[test]
    fn per_mi_gate_zeroes_gradient_below_residual() {
        let mut g = MiNoiseGate::new(NoiseTolerance::Adaptive(AdaptiveNoiseParams::default()));
        // Gradient 0.002 but residual 0.01: statistically meaningless.
        let out = g.process(&mi(0.002, 0.01, 0.003, 0.03));
        assert_eq!(out.rtt_gradient, 0.0);
        assert_eq!(out.rtt_deviation, 0.0);
        assert!(out.per_mi_gated);
    }

    #[test]
    fn clear_gradient_passes_adaptive_gate() {
        let mut g = MiNoiseGate::new(NoiseTolerance::Adaptive(AdaptiveNoiseParams::default()));
        let out = g.process(&mi(0.05, 0.001, 0.004, 0.03));
        assert_eq!(out.rtt_gradient, 0.05);
        assert_eq!(out.rtt_deviation, 0.004);
        assert!(!out.per_mi_gated);
    }

    #[test]
    fn trending_restores_slow_persistent_inflation() {
        let mut g = MiNoiseGate::new(NoiseTolerance::Adaptive(AdaptiveNoiseParams::default()));
        // Long quiet phase: builds trending history with flat means.
        for _ in 0..30 {
            g.process(&mi(0.0005, 0.002, 0.0003, 0.030));
        }
        // Slow persistent inflation: per-MI gradient stays under the
        // residual each MI, but the MI means climb steadily — the trending
        // gradient leaves its historical band and the signal is restored.
        let mut restored = false;
        for step in 0..12 {
            let mean = 0.030 + 0.002 * step as f64;
            let out = g.process(&mi(0.0015, 0.002, 0.0008, mean));
            if out.rtt_gradient != 0.0 {
                restored = true;
            }
        }
        assert!(restored, "trending gate never restored the gradient");
    }

    #[test]
    fn trending_restores_deviation_on_competition_onset() {
        let mut g = MiNoiseGate::new(NoiseTolerance::Adaptive(AdaptiveNoiseParams::default()));
        for _ in 0..30 {
            g.process(&mi(0.0005, 0.002, 0.0002, 0.030));
        }
        // A competitor arrives: MI deviations jump an order of magnitude
        // while the per-MI gate would have suppressed them (gradient within
        // residual because the queue oscillates).
        let mut restored = false;
        for _ in 0..8 {
            let out = g.process(&mi(0.0005, 0.002, 0.004, 0.034));
            if out.rtt_deviation != 0.0 {
                restored = true;
            }
        }
        assert!(restored, "deviation never restored on onset");
    }

    #[test]
    fn steady_noise_stays_suppressed() {
        let mut g = MiNoiseGate::new(NoiseTolerance::Adaptive(AdaptiveNoiseParams::default()));
        // Uniform noisy regime: deviations fluctuate but the trend is flat.
        let mut kept = 0;
        for i in 0..60 {
            let dev = 0.001 + 0.0004 * ((i % 5) as f64);
            let out = g.process(&mi(0.0005, 0.003, dev, 0.030));
            if i >= 10 && out.rtt_deviation != 0.0 {
                kept += 1;
            }
        }
        assert!(kept <= 5, "noise leaked through {kept} times");
    }
}
