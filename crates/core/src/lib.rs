//! PCC Proteus — the paper's core contribution, reimplemented in Rust.
//!
//! *PCC Proteus: Scavenger Transport And Beyond* (SIGCOMM 2020) extends the
//! PCC utility framework with a **scavenger** mode that yields to primary
//! flows by penalizing **RTT deviation** — an early, typically-unused
//! signal of flow competition — plus a **hybrid** mode that switches
//! between primary and scavenger behaviour at an application-controlled
//! rate threshold.
//!
//! The crate is organized like the architecture in the paper's Fig. 1:
//!
//! * [`utility`] — the utility-function library: Vivace, Proteus-P (Eq. 1),
//!   Proteus-S (Eq. 2), Proteus-H (Eq. 3) and the [`SharedThreshold`]
//!   cross-layer cell,
//! * [`noise`] — the §5 noise-tolerance mechanisms (per-ACK sample
//!   filtering, per-MI regression-error tolerance, MI-history trending
//!   tolerance),
//! * [`rate_control`] — PCC Vivace's gradient-ascent controller, with
//!   Proteus' three-pair majority probing,
//! * [`proteus`] — [`ProteusSender`], wiring everything behind the shared
//!   [`CongestionControl`](proteus_transport::CongestionControl) trait,
//!   with live mode switching,
//! * [`equilibrium`] — the Appendix-A game model with a numeric
//!   best-response solver (uniqueness / fairness checks) and the §4.4
//!   Proteus-H ideal-allocation formula,
//! * [`config`] — every constant from the paper in one place.
//!
//! # Example: evaluating the scavenger utility
//!
//! ```
//! use proteus_core::{evaluate, MiObservation, Mode, UtilityParams};
//!
//! let params = UtilityParams::default();            // d=0.9, b=900, c=11.35, d_dev=1500
//! let calm = MiObservation {
//!     rate_mbps: 20.0,
//!     loss_rate: 0.0,
//!     rtt_gradient: 0.0,
//!     rtt_deviation: 0.0,
//!     rtt_s: 0.030,
//! };
//! let contended = MiObservation { rtt_deviation: 0.001, ..calm };
//!
//! // With 1 ms of RTT deviation the scavenger's utility collapses while
//! // the primary's is untouched — that asymmetry is the whole paper.
//! assert_eq!(evaluate(&Mode::Primary, &params, &calm),
//!            evaluate(&Mode::Primary, &params, &contended));
//! assert!(evaluate(&Mode::Scavenger, &params, &contended)
//!         < evaluate(&Mode::Scavenger, &params, &calm) - 25.0);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod config;
pub mod equilibrium;
pub mod noise;
pub mod proteus;
pub mod rate_control;
pub mod utility;

pub use config::{
    AdaptiveNoiseParams, MiParams, NoiseTolerance, ProbeRule, ProteusConfig, RateControlParams,
    UtilityParams,
};
pub use equilibrium::{
    hybrid_ideal_allocation, solve_equilibrium, Equilibrium, GameParams, SenderKind,
};
pub use noise::{AckIntervalFilter, GatedMetrics, MiNoiseGate};
pub use proteus::{MiTraceEntry, ProteusSender};
pub use rate_control::RateController;
pub use utility::{
    evaluate, evaluate_terms, utility_allegro, utility_delay_budget, utility_hybrid,
    utility_loss_only, utility_primary, utility_scavenger, utility_vivace, DelayBudgetParams,
    MiObservation, Mode, SharedThreshold, UtilityFunction, UtilityTerms,
};
