//! The Proteus sender: wires together monitor intervals, the utility
//! library, noise tolerance and the Vivace rate controller behind the
//! [`CongestionControl`] interface.
//!
//! This is the architecture of Fig. 1 in the paper: packet-level events feed
//! a *utility module* (metric collection → utility function), whose values
//! drive a *rate control module*; the two are decoupled, so an application
//! can re-select the utility function — primary, scavenger, hybrid — at any
//! time with [`ProteusSender::set_mode`], even mid-flow ("In our user-space
//! implementation, this is a simple API call").

use proteus_trace::{
    AckFilter, DecisionEvent, EventKind, GateVerdict, MiClose, ModeSwitch, NoopSink, TraceSink,
};
use proteus_transport::{
    AckInfo, CcSnapshot, CongestionControl, Dur, LossInfo, MiStats, MiTracker, RttEstimator,
    SentPacket, Time,
};

use std::collections::VecDeque;

use proteus_stats::Ewma;

use crate::config::{NoiseTolerance, ProteusConfig};
use crate::noise::{AckIntervalFilter, GatedMetrics, MiNoiseGate};
use crate::rate_control::RateController;
use crate::utility::{
    evaluate, evaluate_terms, hybrid_uses_scavenger, MiObservation, Mode, SharedThreshold,
};

/// One entry of the sender's diagnostic trace: what the utility module saw
/// and decided for a completed monitor interval.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MiTraceEntry {
    /// MI end time.
    pub at: Time,
    /// Target rate of the MI, Mbps.
    pub rate_mbps: f64,
    /// Achieved goodput, Mbps.
    pub goodput_mbps: f64,
    /// Raw per-MI loss rate.
    pub loss_rate: f64,
    /// Latency metrics after the noise gates.
    pub gated: GatedMetrics,
    /// Resulting utility value.
    pub utility: f64,
    /// Active mode name at evaluation time.
    pub mode: &'static str,
}

/// A Proteus (or PCC Vivace) sender.
///
/// The `S` parameter selects the decision-trace sink (see `proteus-trace`).
/// The default, [`NoopSink`], has `ENABLED = false`: every emission site is
/// guarded by that associated constant, so an untraced sender compiles to
/// exactly the pre-tracing code — no branches, no stores, no allocation on
/// the per-ACK path (guarded by `tests/alloc_free.rs` and the `per_ack`
/// microbenches). [`ProteusSender::with_sink`] rebuilds the sender with a
/// recording sink such as [`proteus_trace::RingSink`].
pub struct ProteusSender<S: TraceSink = NoopSink> {
    cfg: ProteusConfig,
    mode: Mode,
    tracker: MiTracker,
    controller: RateController,
    gate: MiNoiseGate,
    /// Per-ACK burst filter; present only under adaptive noise tolerance.
    ack_filter: Option<AckIntervalFilter>,
    rtt: RttEstimator,
    /// End of the currently open MI.
    mi_end: Option<Time>,
    /// Target rate of the open MI, Mbps.
    current_rate_mbps: f64,
    /// Smoothed per-MI loss rate: the raw per-MI sample is binomially noisy
    /// (±1–2 % absolute at MI-sized packet counts), which would drown the
    /// utility comparisons the controller relies on under sustained random
    /// loss. The metric-collection stage smooths it with a short EWMA.
    loss_ewma: Ewma,
    /// History of (mode switch count) for diagnostics.
    mode_switches: u64,
    /// Most recent utility value (diagnostics).
    last_utility: Option<f64>,
    /// Ring buffer of recent per-MI decisions (empty unless enabled).
    trace: VecDeque<MiTraceEntry>,
    trace_capacity: usize,
    /// Reusable drain buffer for completed MIs: cleared and refilled on
    /// every ACK/loss, so the steady-state per-ACK path performs no heap
    /// allocation (guarded by `tests/alloc_free.rs`).
    mi_scratch: Vec<MiStats>,
    /// Decision-event sink (the zero-sized [`NoopSink`] by default).
    sink: S,
    /// Latest event time seen, used to stamp decisions that happen outside
    /// MI completion (explicit `set_mode` calls). Only maintained when
    /// tracing is enabled.
    clock: Time,
    /// Which side of the Proteus-H threshold rule the previous MI used
    /// (`Some(true)` = scavenger terms), for implicit-switch detection.
    /// Only maintained when tracing is enabled.
    hybrid_branch: Option<bool>,
}

impl ProteusSender {
    /// Creates a sender with an explicit configuration and mode.
    pub fn with_config(cfg: ProteusConfig, mode: Mode) -> Self {
        let ack_filter = match cfg.noise {
            NoiseTolerance::Adaptive(p) => Some(AckIntervalFilter::new(p.ack_interval_ratio)),
            NoiseTolerance::FixedThreshold(_) => None,
        };
        Self {
            mode,
            tracker: MiTracker::new(),
            controller: RateController::new(cfg.rate_control, cfg.seed),
            gate: MiNoiseGate::new(cfg.noise),
            ack_filter,
            rtt: RttEstimator::new(),
            mi_end: None,
            current_rate_mbps: cfg.rate_control.initial_rate_mbps,
            loss_ewma: Ewma::new(0.125),
            mode_switches: 0,
            last_utility: None,
            trace: VecDeque::new(),
            trace_capacity: 0,
            mi_scratch: Vec::new(),
            sink: NoopSink,
            clock: Time::ZERO,
            hybrid_branch: None,
            cfg,
        }
    }

    /// Proteus-P with the paper's defaults.
    pub fn primary(seed: u64) -> Self {
        Self::with_config(ProteusConfig::proteus().with_seed(seed), Mode::Primary)
    }

    /// Proteus-S with the paper's defaults.
    pub fn scavenger(seed: u64) -> Self {
        Self::with_config(ProteusConfig::proteus().with_seed(seed), Mode::Scavenger)
    }

    /// Proteus-H with the given shared threshold.
    pub fn hybrid(seed: u64, threshold: SharedThreshold) -> Self {
        Self::with_config(
            ProteusConfig::proteus().with_seed(seed),
            Mode::Hybrid(threshold),
        )
    }

    /// PCC Vivace as published (agreement probing, flat noise threshold).
    pub fn vivace(seed: u64) -> Self {
        Self::with_config(ProteusConfig::vivace().with_seed(seed), Mode::Vivace)
    }

    /// PCC Allegro's loss-based utility on the shared rate controller
    /// (NSDI'15 used a simpler controller; the objective is what matters
    /// for comparisons here).
    pub fn allegro(seed: u64) -> Self {
        Self::with_config(ProteusConfig::vivace().with_seed(seed), Mode::Allegro)
    }
}

impl<S: TraceSink> ProteusSender<S> {
    /// Enables the per-MI diagnostic trace, keeping the most recent
    /// `capacity` entries (see [`MiTraceEntry`]). Useful for debugging why
    /// a sender yielded or ramped.
    pub fn with_trace(mut self, capacity: usize) -> Self {
        self.trace_capacity = capacity;
        self
    }

    /// The recorded per-MI trace, oldest first.
    pub fn trace(&self) -> impl Iterator<Item = &MiTraceEntry> {
        self.trace.iter()
    }

    /// Rebuilds the sender with a different decision-trace sink (all
    /// controller and measurement state carries over; typically called
    /// right after construction). Enabling a recording sink also turns on
    /// the rate controller's transition log.
    pub fn with_sink<S2: TraceSink>(self, sink: S2) -> ProteusSender<S2> {
        let mut s = ProteusSender {
            cfg: self.cfg,
            mode: self.mode,
            tracker: self.tracker,
            controller: self.controller,
            gate: self.gate,
            ack_filter: self.ack_filter,
            rtt: self.rtt,
            mi_end: self.mi_end,
            current_rate_mbps: self.current_rate_mbps,
            loss_ewma: self.loss_ewma,
            mode_switches: self.mode_switches,
            last_utility: self.last_utility,
            trace: self.trace,
            trace_capacity: self.trace_capacity,
            mi_scratch: self.mi_scratch,
            sink,
            clock: self.clock,
            hybrid_branch: self.hybrid_branch,
        };
        s.controller.set_trace_enabled(S2::ENABLED);
        s
    }

    /// The decision-trace sink (e.g. to inspect `RingSink::dropped`).
    pub fn sink(&self) -> &S {
        &self.sink
    }

    /// Moves all buffered decision events into `out`, oldest first (the
    /// [`CongestionControl::drain_decisions`] hook forwards here).
    pub fn drain_decisions_into(&mut self, out: &mut Vec<DecisionEvent>) {
        self.sink.drain_into(out);
    }

    /// Switches the utility function, even mid-flow (the paper's
    /// *flexibility* goal). The rate controller keeps its state; only the
    /// objective changes.
    pub fn set_mode(&mut self, mode: Mode) {
        if S::ENABLED {
            let threshold_mbps = match &mode {
                Mode::Hybrid(th) => th.get(),
                _ => f64::NAN,
            };
            self.sink.record(DecisionEvent {
                t_ns: self.clock.as_nanos(),
                kind: EventKind::ModeSwitch(ModeSwitch {
                    from: self.mode.name(),
                    to: mode.name(),
                    implicit: false,
                    threshold_mbps,
                    rate_mbps: self.current_rate_mbps,
                }),
            });
            // The threshold-rule branch history belongs to the old mode.
            self.hybrid_branch = None;
        }
        self.mode_switches += 1;
        self.mode = mode;
    }

    /// The active mode.
    pub fn mode(&self) -> &Mode {
        &self.mode
    }

    /// Number of `set_mode` calls so far.
    pub fn mode_switches(&self) -> u64 {
        self.mode_switches
    }

    /// Current target rate, Mbps.
    pub fn rate_mbps(&self) -> f64 {
        self.current_rate_mbps
    }

    /// The most recent MI's utility value, if any.
    pub fn last_utility(&self) -> Option<f64> {
        self.last_utility
    }

    /// MI duration: one smoothed RTT, clamped to the configured bounds.
    fn mi_duration(&self) -> Dur {
        let srtt = self.rtt.srtt_or(Dur::from_millis(100));
        srtt.clamp(self.cfg.mi.min_duration, self.cfg.mi.max_duration)
    }

    fn roll_mi(&mut self, now: Time) {
        let rate = self.controller.next_mi_rate();
        self.current_rate_mbps = rate;
        self.tracker.start_mi(now, rate * 1e6 / 8.0);
        self.mi_end = Some(now + self.mi_duration());
    }

    /// Runs the utility pipeline over the MIs drained into `mi_scratch`.
    ///
    /// The scratch vector is moved out for the duration of the loop (an
    /// allocation-free pointer swap) so its elements can be read while
    /// `self` is mutated, then handed back for reuse by the next event.
    fn process_completed(&mut self) {
        let completed = std::mem::take(&mut self.mi_scratch);
        for &mi in &completed {
            // MIs with no packets (e.g. app-limited gaps) carry no signal.
            if mi.pkts_sent == 0 {
                self.controller
                    .on_mi_complete(self.last_utility.unwrap_or(0.0));
                if S::ENABLED {
                    self.drain_controller_log(mi.end);
                }
                continue;
            }
            let gated = self.gate.process(&mi);
            let loss_rate = self.loss_ewma.update(mi.loss_rate);
            let obs = MiObservation {
                rate_mbps: mi.target_rate * 8.0 / 1e6,
                loss_rate,
                rtt_gradient: gated.rtt_gradient,
                rtt_deviation: gated.rtt_deviation,
                rtt_s: mi.rtt_mean,
            };
            // The traced path evaluates through `evaluate_terms`, whose
            // `utility` is bitwise identical to `evaluate` (tested in
            // `utility.rs`), so tracing cannot perturb control decisions.
            let u = if S::ENABLED {
                let end_ns = mi.end.as_nanos();
                self.sink.record(DecisionEvent {
                    t_ns: end_ns,
                    kind: EventKind::GateVerdict(GateVerdict {
                        raw_gradient: mi.rtt_gradient,
                        raw_deviation: mi.rtt_dev,
                        gradient_error: mi.gradient_error,
                        per_mi_gated: gated.per_mi_gated,
                        trend_restored_gradient: gated.trend_restored_gradient,
                        trend_restored_deviation: gated.trend_restored_deviation,
                        out_gradient: gated.rtt_gradient,
                        out_deviation: gated.rtt_deviation,
                    }),
                });
                if let Mode::Hybrid(th) = &self.mode {
                    let threshold = th.get();
                    let scav = hybrid_uses_scavenger(obs.rate_mbps, threshold);
                    if let Some(prev) = self.hybrid_branch {
                        if prev != scav {
                            let (from, to) = if scav {
                                ("Proteus-P", "Proteus-S")
                            } else {
                                ("Proteus-S", "Proteus-P")
                            };
                            self.sink.record(DecisionEvent {
                                t_ns: end_ns,
                                kind: EventKind::ModeSwitch(ModeSwitch {
                                    from,
                                    to,
                                    implicit: true,
                                    threshold_mbps: threshold,
                                    rate_mbps: obs.rate_mbps,
                                }),
                            });
                        }
                    }
                    self.hybrid_branch = Some(scav);
                }
                let terms = evaluate_terms(&self.mode, &self.cfg.utility, &obs);
                self.sink.record(DecisionEvent {
                    t_ns: end_ns,
                    kind: EventKind::MiClose(MiClose {
                        mi_start_ns: mi.start.as_nanos(),
                        rate_mbps: obs.rate_mbps,
                        goodput_mbps: mi.throughput * 8.0 / 1e6,
                        loss_rate,
                        raw_loss_rate: mi.loss_rate,
                        rtt_mean_s: mi.rtt_mean,
                        rtt_dev_s: gated.rtt_deviation,
                        rtt_gradient: gated.rtt_gradient,
                        utility: terms.utility,
                        term_rate: terms.term_rate,
                        term_gradient: terms.term_gradient,
                        term_loss: terms.term_loss,
                        term_deviation: terms.term_deviation,
                        mode: terms.effective,
                    }),
                });
                terms.utility
            } else {
                evaluate(&self.mode, &self.cfg.utility, &obs)
            };
            self.last_utility = Some(u);
            if self.trace_capacity > 0 {
                if self.trace.len() == self.trace_capacity {
                    self.trace.pop_front();
                }
                self.trace.push_back(MiTraceEntry {
                    at: mi.end,
                    rate_mbps: obs.rate_mbps,
                    goodput_mbps: mi.throughput * 8.0 / 1e6,
                    loss_rate: mi.loss_rate,
                    gated,
                    utility: u,
                    mode: self.mode.name(),
                });
            }
            self.controller.on_mi_complete(u);
            if S::ENABLED {
                self.drain_controller_log(mi.end);
            }
        }
        self.mi_scratch = completed;
    }

    /// Moves the controller's per-completion decision log into the sink,
    /// stamped with the completing MI's end time.
    fn drain_controller_log(&mut self, at: Time) {
        let t_ns = at.as_nanos();
        let sink = &mut self.sink;
        self.controller
            .log
            .drain(|kind| sink.record(DecisionEvent { t_ns, kind }));
    }
}

impl<S: TraceSink> std::fmt::Debug for ProteusSender<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ProteusSender")
            .field("mode", &self.mode.name())
            .field("rate_mbps", &self.current_rate_mbps)
            .field("mi_end", &self.mi_end)
            .finish()
    }
}

impl<S: TraceSink> CongestionControl for ProteusSender<S> {
    fn name(&self) -> &str {
        self.mode.name()
    }

    fn on_flow_start(&mut self, now: Time) {
        if S::ENABLED {
            self.clock = now;
        }
        self.roll_mi(now);
    }

    fn on_packet_sent(&mut self, _now: Time, pkt: &SentPacket) {
        self.tracker.on_sent(pkt);
    }

    fn on_ack(&mut self, now: Time, ack: &AckInfo) {
        if S::ENABLED {
            self.clock = now;
        }
        self.rtt.update(ack.rtt);
        let keep_rtt = match &mut self.ack_filter {
            Some(f) => {
                if S::ENABLED {
                    // The filter verdicts every ACK; the trace records the
                    // episode *boundaries* (started/stopped dropping).
                    let was_filtering = f.is_filtering();
                    let keep = f.on_ack(ack);
                    if f.is_filtering() != was_filtering {
                        let (accepted, dropped) = f.counts();
                        self.sink.record(DecisionEvent {
                            t_ns: now.as_nanos(),
                            kind: EventKind::AckFilter(AckFilter {
                                dropping: !was_filtering,
                                accepted,
                                dropped,
                            }),
                        });
                    }
                    keep
                } else {
                    f.on_ack(ack)
                }
            }
            None => true,
        };
        self.mi_scratch.clear();
        self.tracker
            .on_ack_filtered_into(ack, keep_rtt, &mut self.mi_scratch);
        self.process_completed();
    }

    fn on_loss(&mut self, now: Time, loss: &LossInfo) {
        if S::ENABLED {
            self.clock = now;
        }
        self.mi_scratch.clear();
        self.tracker.on_loss_into(loss, &mut self.mi_scratch);
        self.process_completed();
    }

    fn pacing_rate(&self) -> Option<f64> {
        Some(self.current_rate_mbps * 1e6 / 8.0)
    }

    fn next_timer(&self) -> Option<Time> {
        self.mi_end
    }

    fn on_timer(&mut self, now: Time) {
        if S::ENABLED {
            self.clock = now;
        }
        if let Some(end) = self.mi_end {
            if now >= end {
                self.roll_mi(now);
            }
        }
    }

    fn snapshot(&self) -> Option<CcSnapshot> {
        Some(CcSnapshot {
            utility: self.last_utility,
            mode: Some(self.mode.name()),
            mode_switches: self.mode_switches,
        })
    }

    fn drain_decisions(&mut self, out: &mut Vec<DecisionEvent>) {
        if S::ENABLED {
            self.drain_decisions_into(out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ack(seq: u64, sent: Time, now: Time) -> AckInfo {
        AckInfo {
            seq,
            bytes: 1500,
            sent_at: sent,
            recv_at: now,
            rtt: now.since(sent),
            one_way_delay: Dur::from_nanos(now.since(sent).as_nanos() / 2),
        }
    }

    #[test]
    fn starts_first_mi_on_flow_start() {
        let mut s = ProteusSender::primary(1);
        assert_eq!(s.next_timer(), None);
        s.on_flow_start(Time::from_millis(10));
        assert!(s.next_timer().is_some());
        assert!(s.pacing_rate().unwrap() > 0.0);
        assert_eq!(s.name(), "Proteus-P");
    }

    #[test]
    fn timer_rolls_monitor_intervals() {
        let mut s = ProteusSender::primary(1);
        s.on_flow_start(Time::ZERO);
        let first_end = s.next_timer().unwrap();
        s.on_timer(first_end);
        let second_end = s.next_timer().unwrap();
        assert!(second_end > first_end);
    }

    #[test]
    fn slow_start_doubles_rate_through_sim_events() {
        let mut s = ProteusSender::primary(1);
        s.on_flow_start(Time::ZERO);
        let r0 = s.rate_mbps();
        s.on_timer(s.next_timer().unwrap());
        let r1 = s.rate_mbps();
        assert!(
            (r1 / r0 - 2.0).abs() < 1e-9,
            "expected doubling: {r0} -> {r1}"
        );
    }

    #[test]
    fn mode_switch_mid_flow() {
        let mut s = ProteusSender::primary(1);
        s.on_flow_start(Time::ZERO);
        assert_eq!(s.name(), "Proteus-P");
        s.set_mode(Mode::Scavenger);
        assert_eq!(s.name(), "Proteus-S");
        assert_eq!(s.mode_switches(), 1);
        let th = SharedThreshold::new(25.0);
        s.set_mode(Mode::Hybrid(th));
        assert_eq!(s.name(), "Proteus-H");
    }

    #[test]
    fn utility_flows_from_acks_to_controller() {
        let mut s = ProteusSender::primary(1);
        s.on_flow_start(Time::ZERO);
        // Send a packet in MI 0, roll the MI, ack it: MI 0 completes.
        let pkt = SentPacket {
            seq: 0,
            bytes: 1500,
            sent_at: Time::from_millis(1),
        };
        s.on_packet_sent(Time::from_millis(1), &pkt);
        s.on_timer(s.next_timer().unwrap());
        assert_eq!(s.last_utility(), None);
        s.on_ack(
            Time::from_millis(31),
            &ack(0, Time::from_millis(1), Time::from_millis(31)),
        );
        assert!(s.last_utility().is_some());
    }

    #[test]
    fn vivace_has_no_ack_filter() {
        let v = ProteusSender::vivace(1);
        assert!(v.ack_filter.is_none());
        assert_eq!(v.name(), "PCC-Vivace");
        let p = ProteusSender::primary(1);
        assert!(p.ack_filter.is_some());
    }

    #[test]
    fn trace_records_mi_decisions() {
        let mut s = ProteusSender::scavenger(1).with_trace(4);
        s.on_flow_start(Time::ZERO);
        // Complete six MIs; the ring must keep only the last four.
        let mut now = Time::ZERO;
        for i in 0..6u64 {
            let pkt = SentPacket {
                seq: i,
                bytes: 1500,
                sent_at: now + Dur::from_millis(1),
            };
            s.on_packet_sent(now + Dur::from_millis(1), &pkt);
            s.on_timer(s.next_timer().unwrap());
            now = s.next_timer().unwrap();
            s.on_ack(now, &ack(i, pkt.sent_at, now));
        }
        let entries: Vec<_> = s.trace().collect();
        assert_eq!(entries.len(), 4);
        assert!(entries.windows(2).all(|w| w[0].at <= w[1].at));
        assert!(entries.iter().all(|e| e.mode == "Proteus-S"));
        assert!(entries.iter().all(|e| e.utility.is_finite()));
    }

    #[test]
    fn trace_disabled_by_default() {
        let mut s = ProteusSender::primary(1);
        s.on_flow_start(Time::ZERO);
        let pkt = SentPacket {
            seq: 0,
            bytes: 1500,
            sent_at: Time::from_millis(1),
        };
        s.on_packet_sent(Time::from_millis(1), &pkt);
        s.on_timer(s.next_timer().unwrap());
        s.on_ack(
            Time::from_millis(131),
            &ack(0, Time::from_millis(1), Time::from_millis(131)),
        );
        assert_eq!(s.trace().count(), 0);
    }

    #[test]
    fn mi_duration_tracks_srtt_within_bounds() {
        let mut s = ProteusSender::primary(1);
        // No RTT yet: fallback 100 ms.
        assert_eq!(s.mi_duration(), Dur::from_millis(100));
        s.rtt.update(Dur::from_millis(30));
        assert_eq!(s.mi_duration(), Dur::from_millis(30));
        s.rtt.update(Dur::from_millis(1));
        // Clamped to the configured minimum.
        assert!(s.mi_duration() >= s.cfg.mi.min_duration);
    }

    /// Closes `n` MIs on a traced sender, one acked packet per MI.
    fn close_mis(
        s: &mut ProteusSender<proteus_trace::RingSink>,
        now: &mut Time,
        seq: &mut u64,
        n: usize,
    ) {
        for _ in 0..n {
            let pkt = SentPacket {
                seq: *seq,
                bytes: 1500,
                sent_at: *now + Dur::from_millis(1),
            };
            s.on_packet_sent(pkt.sent_at, &pkt);
            s.on_timer(s.next_timer().unwrap());
            *now = s.next_timer().unwrap();
            s.on_ack(*now, &ack(*seq, pkt.sent_at, *now));
            *seq += 1;
        }
    }

    /// Drains the sender's sink and returns `(t_ns, switch)` pairs.
    fn drain_switches(s: &mut ProteusSender<proteus_trace::RingSink>) -> Vec<(u64, ModeSwitch)> {
        let mut events = Vec::new();
        s.drain_decisions_into(&mut events);
        events
            .iter()
            .filter_map(|e| match e.kind {
                EventKind::ModeSwitch(m) => Some((e.t_ns, m)),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn hybrid_emits_mode_switches_exactly_at_threshold_crossings() {
        let th = SharedThreshold::new(f64::MAX);
        let mut s = ProteusSender::with_config(
            ProteusConfig::proteus().with_seed(1),
            Mode::Hybrid(th.clone()),
        )
        .with_sink(proteus_trace::RingSink::new(128));
        s.on_flow_start(Time::ZERO);
        let (mut now, mut seq) = (Time::ZERO, 0u64);

        // Every rate is below f64::MAX: the first MI close pins the primary
        // branch and later closes stay on it — no crossing, no events.
        close_mis(&mut s, &mut now, &mut seq, 3);
        assert!(drain_switches(&mut s).is_empty());

        // Dropping the threshold below the sending rate is a crossing: the
        // §4.4 rule flips to scavenger terms at the very next MI close, and
        // exactly once — later closes stay on the new branch.
        th.set(0.0);
        close_mis(&mut s, &mut now, &mut seq, 3);
        let next_close_ns = {
            // The switch must carry the timestamp of the first MI close
            // after the flip, which `close_mis` aligned to `next_timer`.
            let switches = drain_switches(&mut s);
            assert_eq!(switches.len(), 1, "one crossing, one event");
            let (t_ns, sw) = switches[0];
            assert!(sw.implicit, "threshold-rule switches are implicit");
            assert_eq!((sw.from, sw.to), ("Proteus-P", "Proteus-S"));
            assert_eq!(sw.threshold_mbps, 0.0);
            assert!(sw.rate_mbps >= sw.threshold_mbps);
            t_ns
        };
        assert!(next_close_ns > 0);

        // Raising it back above the rate crosses again, in the other
        // direction.
        th.set(f64::MAX);
        close_mis(&mut s, &mut now, &mut seq, 3);
        let switches = drain_switches(&mut s);
        assert_eq!(switches.len(), 1);
        assert_eq!(
            (switches[0].1.from, switches[0].1.to),
            ("Proteus-S", "Proteus-P")
        );
        assert!(switches[0].1.implicit);

        // An explicit `set_mode` also records a switch, marked as such.
        s.set_mode(Mode::Scavenger);
        let switches = drain_switches(&mut s);
        assert_eq!(switches.len(), 1);
        assert!(!switches[0].1.implicit);
        assert_eq!(
            (switches[0].1.from, switches[0].1.to),
            ("Proteus-H", "Proteus-S")
        );
    }
}
