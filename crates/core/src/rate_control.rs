//! The PCC Vivace gradient-ascent rate controller (NSDI'18), with Proteus'
//! majority-rule probing (§5).
//!
//! The controller is a per-MI state machine:
//!
//! * **Starting** — the rate doubles every MI while utility keeps rising;
//!   the first utility drop reverts to the last good rate and enters
//!   probing (Vivace's slow start).
//! * **Probing** — pairs of MIs test `rate·(1+ε)` and `rate·(1−ε)` in
//!   random order. Vivace runs 2 pairs and moves only on agreement;
//!   Proteus runs 3 pairs and moves by majority, which reaches a decision
//!   faster under noise while avoiding false moves.
//! * **Moving** — gradient ascent: each MI moves the rate by
//!   `θ = m·γ·∇u`, where the confidence amplifier `m` grows with
//!   consecutive same-direction steps and `θ` is clamped by the dynamic
//!   boundary `ω·rate` (ω grows from 5 % by 10 % per consecutive step, and
//!   resets on reversal). A utility drop reverts the last step and returns
//!   to probing.
//!
//! MIs complete about one RTT after they close, so the controller hands out
//! rates *ahead* of the utility results; a tag queue matches each completed
//! MI back to the purpose it was issued for, and an epoch counter discards
//! results that belong to an abandoned plan.

use std::collections::VecDeque;

use proteus_trace::{CtlPhase, EventKind, ProbeOutcome, RateTransition};
use rand::rngs::SmallRng;
use rand::{RngExt as _, SeedableRng};

use crate::config::{ProbeRule, RateControlParams};

/// Upper bound on probe pairs any [`ProbeRule`] schedules (Vivace uses 2,
/// Proteus §5 uses 3). Sizes the fixed probe buffers below.
const MAX_PAIRS: usize = 4;

/// A probe trial: `(pair index, high side, rate)`.
type Trial = (usize, bool, f64);

/// Fixed-capacity FIFO of probe trials still to hand out. Entering the
/// Probing state happens inside the per-ACK completion path, so the plan
/// lives on the stack instead of a `VecDeque` — pushing and popping never
/// touch the heap. Trials are pushed once up front and only popped after,
/// so a moving head index (no wraparound) is enough.
#[derive(Debug, Clone, Copy, Default)]
struct ProbePlan {
    slots: [Trial; 2 * MAX_PAIRS],
    head: usize,
    len: usize,
}

impl ProbePlan {
    fn push_back(&mut self, trial: Trial) {
        debug_assert!(self.head + self.len < self.slots.len());
        self.slots[self.head + self.len] = trial;
        self.len += 1;
    }

    fn pop_front(&mut self) -> Option<Trial> {
        if self.len == 0 {
            return None;
        }
        let trial = self.slots[self.head];
        self.head += 1;
        self.len -= 1;
        Some(trial)
    }
}

/// Fixed-capacity collection of completed `(pair, high, utility)` probe
/// results — at most `2 · MAX_PAIRS` per round, stack-allocated for the
/// same reason as [`ProbePlan`].
#[derive(Debug, Clone, Copy, Default)]
struct ProbeResults {
    slots: [Trial; 2 * MAX_PAIRS],
    len: usize,
}

impl ProbeResults {
    fn push(&mut self, result: Trial) {
        debug_assert!(self.len < self.slots.len());
        self.slots[self.len] = result;
        self.len += 1;
    }

    fn len(&self) -> usize {
        self.len
    }

    fn iter(&self) -> std::slice::Iter<'_, Trial> {
        self.slots[..self.len].iter()
    }
}

/// Why an MI was issued (matched back on completion).
#[derive(Debug, Clone, Copy, PartialEq)]
enum Tag {
    /// Slow-start step at this rate.
    Starting { rate: f64 },
    /// Probing trial `pair_idx`, high (`+ε`) or low side.
    Probe { pair: usize, high: bool, rate: f64 },
    /// Neutral MI at the base rate (plan exhausted, awaiting results).
    Filler,
    /// Gradient-ascent step at this rate.
    Moving { rate: f64 },
}

// Probing inlines its fixed probe-plan/result buffers: one State exists per
// flow and probing re-entry happens on the ACK path, so the footprint is the
// point — no allocation, no indirection.
#[allow(clippy::large_enum_variant)]
#[derive(Debug)]
enum State {
    Starting {
        /// Rate/utility of the best completed step so far.
        prev: Option<(f64, f64)>,
        /// Consecutive utility drops observed. One drop can be measurement
        /// noise (per-MI loss sampling); two in a row — or a single
        /// strongly negative utility — end the exponential phase.
        drops: u32,
    },
    Probing {
        base: f64,
        /// Rates still to hand out, front first.
        plan: ProbePlan,
        /// Collected `(pair, high, utility)` results.
        results: ProbeResults,
    },
    Moving {
        prev_rate: f64,
        prev_utility: f64,
        /// +1.0 or −1.0: committed direction.
        direction: f64,
        /// Consecutive same-direction steps.
        steps: u32,
        /// Most recent non-degenerate utility gradient (MIs completed at
        /// identical rates carry no slope information; the last measured
        /// gradient keeps the ascent going through those).
        last_gradient: f64,
        /// Consecutive direction flips: two in a row means the ascent is
        /// oscillating around the optimum — time to re-probe.
        flips: u32,
    },
}

/// Fixed-capacity scratch log of controller decisions taken while
/// processing one MI completion (at most a probe outcome plus the state
/// transition it causes — capacity 4 leaves slack). The owning sender
/// drains it after each `on_mi_complete`, stamping timestamps; when tracing
/// is disabled (the default) nothing is ever pushed, so the completion path
/// stays write-free.
#[derive(Debug, Default)]
pub(crate) struct CtlLog {
    enabled: bool,
    slots: [Option<EventKind>; 4],
    len: usize,
}

impl CtlLog {
    fn push(&mut self, kind: EventKind) {
        if !self.enabled {
            return;
        }
        if self.len < self.slots.len() {
            self.slots[self.len] = Some(kind);
            self.len += 1;
        }
        // Overflow is impossible by construction (≤ 2 pushes per
        // completion, drained every completion); dropping on the floor is
        // still the right failure mode for a tracing path.
    }

    pub(crate) fn drain(&mut self, mut f: impl FnMut(EventKind)) {
        for slot in &mut self.slots[..self.len] {
            if let Some(kind) = slot.take() {
                f(kind);
            }
        }
        self.len = 0;
    }
}

/// The PCC rate controller. Rates are in Mbit/sec throughout.
#[derive(Debug)]
pub struct RateController {
    params: RateControlParams,
    rng: SmallRng,
    state: State,
    /// Current base sending rate, Mbps.
    rate: f64,
    /// Epoch guard: results tagged under an older epoch are ignored.
    epoch: u64,
    /// Tags for MIs handed out and not yet completed, front = oldest.
    pending: VecDeque<(u64, Tag)>,
    /// Decision log scratch, drained by the sender per completion.
    pub(crate) log: CtlLog,
}

impl RateController {
    /// Creates a controller in the Starting state.
    pub fn new(params: RateControlParams, seed: u64) -> Self {
        Self {
            params,
            rng: SmallRng::seed_from_u64(seed),
            state: State::Starting {
                prev: None,
                drops: 0,
            },
            rate: params.initial_rate_mbps,
            epoch: 0,
            pending: VecDeque::new(),
            log: CtlLog::default(),
        }
    }

    /// Turns decision logging on or off (off by default; the log is only
    /// written when a tracing sender will drain it).
    pub(crate) fn set_trace_enabled(&mut self, enabled: bool) {
        self.log.enabled = enabled;
    }

    /// Current controller phase, for decision traces.
    fn phase(&self) -> CtlPhase {
        match self.state {
            State::Starting { .. } => CtlPhase::Starting,
            State::Probing { .. } => CtlPhase::Probing,
            State::Moving { .. } => CtlPhase::Moving,
        }
    }

    /// Current base rate, Mbps.
    pub fn rate_mbps(&self) -> f64 {
        self.rate
    }

    /// Whether the controller is still in slow start.
    pub fn is_starting(&self) -> bool {
        matches!(self.state, State::Starting { .. })
    }

    /// Whether the controller is currently probing.
    pub fn is_probing(&self) -> bool {
        matches!(self.state, State::Probing { .. })
    }

    /// Hands out the target rate for the next MI.
    pub fn next_mi_rate(&mut self) -> f64 {
        let (tag, rate) = match &mut self.state {
            State::Starting { .. } => {
                let r = self.rate;
                // Pipeline the doubling; completions will catch a drop.
                self.rate *= 2.0;
                (Tag::Starting { rate: r }, r)
            }
            State::Probing { plan, .. } => match plan.pop_front() {
                Some((pair, high, rate)) => (Tag::Probe { pair, high, rate }, rate),
                None => (Tag::Filler, self.rate),
            },
            State::Moving { .. } => (Tag::Moving { rate: self.rate }, self.rate),
        };
        self.pending.push_back((self.epoch, tag));
        rate.max(self.params.min_rate_mbps)
    }

    /// Feeds the utility of the oldest outstanding MI (MIs complete in
    /// order).
    pub fn on_mi_complete(&mut self, utility: f64) {
        let Some((epoch, tag)) = self.pending.pop_front() else {
            return;
        };
        if epoch != self.epoch {
            return; // belongs to an abandoned plan
        }
        match tag {
            Tag::Starting { rate } => self.handle_starting(rate, utility),
            Tag::Probe { pair, high, .. } => self.handle_probe(pair, high, utility),
            Tag::Filler => {}
            Tag::Moving { rate } => self.handle_moving(rate, utility),
        }
    }

    fn bump_epoch(&mut self) {
        self.epoch += 1;
    }

    fn enter_probing(&mut self, base: f64) {
        self.bump_epoch();
        let base = base.max(self.params.min_rate_mbps);
        self.log.push(EventKind::RateTransition(RateTransition {
            from: self.phase(),
            to: CtlPhase::Probing,
            rate_mbps: base,
        }));
        self.rate = base;
        let eps = self.params.epsilon;
        let pairs = self.params.probe_rule.pairs();
        debug_assert!(pairs <= MAX_PAIRS, "probe rule exceeds plan capacity");
        let mut plan = ProbePlan::default();
        for pair in 0..pairs {
            let high_first: bool = self.rng.random();
            let hi = (pair, true, base * (1.0 + eps));
            let lo = (pair, false, base * (1.0 - eps));
            if high_first {
                plan.push_back(hi);
                plan.push_back(lo);
            } else {
                plan.push_back(lo);
                plan.push_back(hi);
            }
        }
        self.state = State::Probing {
            base,
            plan,
            results: ProbeResults::default(),
        };
    }

    fn enter_moving(&mut self, base: f64, base_utility: f64, gradient: f64) {
        self.bump_epoch();
        let direction = if gradient >= 0.0 { 1.0 } else { -1.0 };
        let theta = self.clamped_step(gradient, 1, base);
        self.log.push(EventKind::RateTransition(RateTransition {
            from: self.phase(),
            to: CtlPhase::Moving,
            rate_mbps: (base + theta).max(self.params.min_rate_mbps),
        }));
        self.rate = (base + theta).max(self.params.min_rate_mbps);
        self.state = State::Moving {
            prev_rate: base,
            prev_utility: base_utility,
            direction,
            steps: 1,
            last_gradient: gradient,
            flips: 0,
        };
    }

    /// `θ = m·γ·grad`, clamped to the dynamic boundary `ω(k)·rate`.
    ///
    /// The step is *gradient-proportional* (Vivace §4): near a shared
    /// bottleneck the smaller flow has the larger marginal utility, so
    /// absolute steps pull competing flows toward the fair point, whereas
    /// rate-proportional steps would let the incumbent run away.
    fn clamped_step(&self, gradient: f64, steps: u32, rate: f64) -> f64 {
        let m = steps as f64;
        let rate = rate.max(self.params.min_rate_mbps);
        let raw = m * self.params.gamma * gradient;
        let omega = (self.params.omega_init + self.params.omega_step * (steps - 1) as f64)
            .min(self.params.omega_max);
        let bound = omega * rate;
        raw.clamp(-bound, bound)
    }

    fn handle_starting(&mut self, rate: f64, utility: f64) {
        let State::Starting { prev, drops } = &mut self.state else {
            return;
        };
        match *prev {
            None => *prev = Some((rate, utility)),
            Some((prev_rate, prev_utility)) => {
                if utility < prev_utility {
                    *drops += 1;
                    // A strongly negative utility is unambiguous congestion;
                    // otherwise require confirmation to ride out noise.
                    if utility < 0.0 || *drops >= 2 {
                        // Overshot: revert to the last good rate and probe.
                        self.enter_probing(prev_rate);
                    }
                } else {
                    *drops = 0;
                    *prev = Some((rate, utility));
                }
            }
        }
    }

    fn handle_probe(&mut self, pair: usize, high: bool, utility: f64) {
        let State::Probing {
            base,
            plan: _,
            results,
        } = &mut self.state
        else {
            return;
        };
        let base = *base;
        results.push((pair, high, utility));
        let pairs_needed = self.params.probe_rule.pairs();
        // Wait until every trial of every pair has reported.
        if results.len() < 2 * pairs_needed {
            return;
        }
        // Tally per-pair directions and the average gradient.
        let mut direction_sum: i32 = 0;
        let mut gradient_sum = 0.0;
        let mut gradient_n = 0;
        let mut agreement: Option<bool> = None;
        let mut agreed = true;
        for p in 0..pairs_needed {
            let hi = results
                .iter()
                .find(|&&(pp, h, _)| pp == p && h)
                .map(|&(_, _, u)| u);
            let lo = results
                .iter()
                .find(|&&(pp, h, _)| pp == p && !h)
                .map(|&(_, _, u)| u);
            if let (Some(u_hi), Some(u_lo)) = (hi, lo) {
                let up = u_hi > u_lo;
                direction_sum += if up { 1 } else { -1 };
                let dr = 2.0 * self.params.epsilon * base;
                if dr > 0.0 {
                    gradient_sum += (u_hi - u_lo) / dr;
                    gradient_n += 1;
                }
                match agreement {
                    None => agreement = Some(up),
                    Some(a) if a != up => agreed = false,
                    _ => {}
                }
            }
        }
        let base_utility = results.iter().map(|&(_, _, u)| u).sum::<f64>() / results.len() as f64;
        let decided = match self.params.probe_rule {
            ProbeRule::Agreement => agreed,
            ProbeRule::Majority => direction_sum != 0,
        };
        if decided && gradient_n > 0 {
            let gradient = gradient_sum / gradient_n as f64;
            // Majority rule: the sign comes from the vote, the magnitude
            // from the measured gradient.
            let signed = match self.params.probe_rule {
                ProbeRule::Majority => {
                    let sign = if direction_sum > 0 { 1.0 } else { -1.0 };
                    sign * gradient.abs()
                }
                ProbeRule::Agreement => gradient,
            };
            self.log.push(EventKind::ProbeOutcome(ProbeOutcome {
                base_mbps: base,
                decided: true,
                vote: direction_sum,
                gradient: signed,
            }));
            self.enter_moving(base, base_utility, signed);
        } else {
            self.log.push(EventKind::ProbeOutcome(ProbeOutcome {
                base_mbps: base,
                decided: false,
                vote: direction_sum,
                gradient: if gradient_n > 0 {
                    gradient_sum / gradient_n as f64
                } else {
                    0.0
                },
            }));
            // Inconclusive: probe again around the same base.
            self.enter_probing(base);
        }
    }

    fn handle_moving(&mut self, rate: f64, utility: f64) {
        let State::Moving {
            prev_rate,
            prev_utility,
            direction,
            steps,
            last_gradient,
            flips,
        } = &mut self.state
        else {
            return;
        };
        let dr = rate - *prev_rate;
        // The 1-2 MI completion pipeline means consecutive completions
        // often carry the same rate: reuse the last measured gradient then.
        let gradient = if dr.abs() > 1e-6 * rate.abs().max(1e-6) {
            (utility - *prev_utility) / dr
        } else {
            *last_gradient
        };
        *last_gradient = gradient;
        // Follow the measured gradient, downhill steps included: under
        // noise (e.g. random loss sampling) individual utility comparisons
        // are unreliable, and symmetric errors average out while the true
        // gradient accumulates. Only a sustained oscillation — two
        // direction flips in a row — means the ascent has found the
        // optimum and should hand back to probing.
        let new_direction = if gradient >= 0.0 { 1.0 } else { -1.0 };
        if new_direction == *direction {
            *steps += 1;
            *flips = 0;
        } else {
            *direction = new_direction;
            *steps = 1;
            *flips += 1;
        }
        if *flips >= 2 {
            // Re-probe around whichever recent rate scored better.
            let base = if utility >= *prev_utility {
                rate
            } else {
                *prev_rate
            };
            self.enter_probing(base);
            return;
        }
        let steps_now = *steps;
        *prev_rate = rate;
        *prev_utility = utility;
        let theta = self.clamped_step(gradient, steps_now, rate);
        self.rate = (rate + theta).max(self.params.min_rate_mbps);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::RateControlParams;

    fn controller(rule: ProbeRule) -> RateController {
        RateController::new(
            RateControlParams {
                probe_rule: rule,
                ..RateControlParams::default()
            },
            42,
        )
    }

    /// Drives one MI: hands out a rate, immediately completes it with the
    /// utility produced by `u`.
    fn step(c: &mut RateController, u: impl Fn(f64) -> f64) -> f64 {
        let r = c.next_mi_rate();
        c.on_mi_complete(u(r));
        r
    }

    /// Forces the controller out of slow start with strictly decreasing
    /// utilities.
    fn force_probing(c: &mut RateController) {
        let _ = c.next_mi_rate();
        c.on_mi_complete(1.0);
        let _ = c.next_mi_rate();
        c.on_mi_complete(-2.0);
        assert!(c.is_probing());
    }

    #[test]
    fn starting_doubles_until_utility_drops() {
        let mut c = controller(ProbeRule::Majority);
        assert!(c.is_starting());
        // Utility peaks at 50 Mbps, falls beyond (crude single-flow link).
        let u = |r: f64| {
            if r <= 50.0 {
                r.powf(0.9)
            } else {
                50f64.powf(0.9) - (r - 50.0) * 5.0
            }
        };
        let mut rates = Vec::new();
        for _ in 0..12 {
            rates.push(step(&mut c, u));
            if !c.is_starting() {
                break;
            }
        }
        assert!(!c.is_starting(), "never left slow start: {rates:?}");
        // Doubling happened: 2, 4, 8, ...
        assert!(rates[1] / rates[0] > 1.9);
        // After the drop it probes around the last good rate.
        assert!(c.is_probing());
        assert!(c.rate_mbps() <= 64.0 + 1.0, "rate = {}", c.rate_mbps());
    }

    #[test]
    fn probing_moves_toward_higher_utility() {
        let mut c = controller(ProbeRule::Majority);
        force_probing(&mut c);
        let base = c.rate_mbps();
        // Strictly increasing utility: every pair votes "up".
        let u = |r: f64| r;
        for _ in 0..8 {
            step(&mut c, u);
            if !c.is_probing() {
                break;
            }
        }
        assert!(!c.is_probing(), "no decision after a full probe round");
        // Next MIs move the rate up.
        let mut last = base;
        for _ in 0..5 {
            let r = step(&mut c, u);
            assert!(r >= last * 0.99, "rate regressed: {r} < {last}");
            last = r;
        }
        assert!(last > base, "never moved up: {last} vs {base}");
    }

    #[test]
    fn majority_rule_decides_with_one_dissenting_pair() {
        let mut c = controller(ProbeRule::Majority);
        force_probing(&mut c);
        let base = c.rate_mbps();
        // Noisy utility: pairs 0 and 2 vote up, pair 1 votes down.
        let mut trial = 0;
        let mut rates_and_utils = Vec::new();
        while c.is_probing() && trial < 6 {
            let r = c.next_mi_rate();
            let vote_down_pair = trial / 2 == 1;
            let u = if (r > base) ^ vote_down_pair {
                1.0
            } else {
                0.0
            };
            rates_and_utils.push((r, u));
            c.on_mi_complete(u);
            trial += 1;
        }
        assert!(!c.is_probing(), "majority should have decided");
        assert!(c.rate_mbps() > base, "majority said up");
    }

    #[test]
    fn agreement_rule_requires_unanimity() {
        let mut c = controller(ProbeRule::Agreement);
        force_probing(&mut c);
        let base = c.rate_mbps();
        // Pair 0 votes up, pair 1 votes down: Vivace must re-probe.
        let mut trial = 0;
        while trial < 4 {
            let r = c.next_mi_rate();
            let vote_down_pair = trial / 2 == 1;
            let u = if (r > base) ^ vote_down_pair {
                1.0
            } else {
                0.0
            };
            c.on_mi_complete(u);
            trial += 1;
        }
        assert!(c.is_probing(), "agreement rule should re-probe on split");
        assert!((c.rate_mbps() - base).abs() < 1e-9);
    }

    #[test]
    fn moving_steps_down_then_reprobes_on_oscillation() {
        let mut c = controller(ProbeRule::Majority);
        force_probing(&mut c);
        let u_up = |r: f64| r;
        while c.is_probing() {
            step(&mut c, u_up);
        }
        let peak = c.rate_mbps();
        // A utility cliff: the measured gradient turns negative, the
        // controller steps down, and after the direction oscillates twice
        // it returns to probing at a rate no higher than the peak.
        let cliff = |r: f64| if r > peak * 0.9 { -100.0 } else { r };
        for _ in 0..10 {
            step(&mut c, cliff);
            if c.is_probing() {
                break;
            }
        }
        assert!(c.is_probing(), "never re-probed after the cliff");
        assert!(c.rate_mbps() <= peak * 1.01);
    }

    #[test]
    fn dynamic_boundary_caps_step_size() {
        let c = controller(ProbeRule::Majority);
        // Huge gradient, first step: |θ| ≤ ω₀·rate = 5 %.
        let theta = c.clamped_step(1e9, 1, 100.0);
        assert!((theta - 5.0).abs() < 1e-9);
        // Step 3: ω = 0.05 + 2·0.05 = 0.15.
        let theta3 = c.clamped_step(1e9, 3, 100.0);
        assert!((theta3 - 15.0).abs() < 1e-9);
        // Cap at ω_max = 0.25.
        let theta9 = c.clamped_step(1e9, 9, 100.0);
        assert!((theta9 - 25.0).abs() < 1e-9);
        // Small gradients step proportionally, below the bound.
        let small = c.clamped_step(1.0, 1, 100.0);
        assert!((small - c.params.gamma).abs() < 1e-9);
        // Negative gradients clamp symmetrically.
        let down = c.clamped_step(-1e9, 1, 100.0);
        assert!((down + 5.0).abs() < 1e-9);
    }

    #[test]
    fn rate_never_below_minimum() {
        let mut c = controller(ProbeRule::Majority);
        for _ in 0..200 {
            let r = step(&mut c, |_r| -1000.0);
            assert!(r >= c.params.min_rate_mbps * 0.999, "rate {r}");
        }
    }

    #[test]
    fn stale_epoch_results_ignored() {
        let mut c = controller(ProbeRule::Majority);
        // Hand out two starting MIs, then force a state change before the
        // second completes.
        let _ = c.next_mi_rate();
        let _ = c.next_mi_rate();
        c.on_mi_complete(10.0);
        c.on_mi_complete(-5.0); // unambiguous drop ⇒ probing, epoch bumped
        assert!(c.is_probing());
        let base = c.rate_mbps();
        // A stale pending tag from before the bump must not disturb probing.
        c.on_mi_complete(123.0);
        assert!((c.rate_mbps() - base).abs() < 1e-9 || c.is_probing());
    }

    #[test]
    fn decision_log_records_outcomes_and_transitions() {
        let mut c = controller(ProbeRule::Majority);
        c.set_trace_enabled(true);
        force_probing(&mut c);
        let mut kinds = Vec::new();
        c.log.drain(|k| kinds.push(k));
        // Leaving slow start logs a Starting → Probing transition.
        assert!(kinds.iter().any(|k| matches!(
            k,
            EventKind::RateTransition(t)
                if t.from == CtlPhase::Starting && t.to == CtlPhase::Probing
        )));
        // A unanimous "up" probe round logs a decided outcome and the
        // Probing → Moving transition it causes, in that order.
        kinds.clear();
        while c.is_probing() {
            step(&mut c, |r| r);
            c.log.drain(|k| kinds.push(k));
        }
        let outcome = kinds
            .iter()
            .position(|k| matches!(k, EventKind::ProbeOutcome(o) if o.decided && o.vote > 0))
            .expect("no decided probe outcome logged");
        assert!(matches!(
            kinds[outcome + 1],
            EventKind::RateTransition(t) if t.to == CtlPhase::Moving
        ));
    }

    #[test]
    fn decision_log_disabled_by_default() {
        let mut c = controller(ProbeRule::Majority);
        force_probing(&mut c);
        while c.is_probing() {
            step(&mut c, |r| r);
        }
        let mut kinds = Vec::new();
        c.log.drain(|k| kinds.push(k));
        assert!(kinds.is_empty());
    }

    #[test]
    fn deterministic_given_seed() {
        let mk = || {
            let mut c = controller(ProbeRule::Majority);
            let u = |r: f64| if r < 40.0 { r } else { 40.0 - r };
            let mut rates = Vec::new();
            for _ in 0..50 {
                rates.push(step(&mut c, u));
            }
            rates
        };
        assert_eq!(mk(), mk());
    }
}
