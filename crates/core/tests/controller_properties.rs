//! Property-based tests on the rate controller and noise gates: invariants
//! that must hold for *any* utility sequence or metric stream.

use proptest::prelude::*;

use proteus_core::{
    AdaptiveNoiseParams, MiNoiseGate, NoiseTolerance, ProbeRule, RateControlParams, RateController,
};
use proteus_transport::{MiStats, Time};

fn controller(rule: ProbeRule, seed: u64) -> RateController {
    RateController::new(
        RateControlParams {
            probe_rule: rule,
            ..RateControlParams::default()
        },
        seed,
    )
}

fn mi(gradient: f64, error: f64, dev: f64, mean: f64) -> MiStats {
    MiStats {
        id: 0,
        start: Time::ZERO,
        end: Time::from_millis(30),
        target_rate: 1e6,
        bytes_sent: 30_000,
        bytes_acked: 30_000,
        bytes_lost: 0,
        pkts_sent: 20,
        pkts_acked: 20,
        pkts_lost: 0,
        throughput: 1e6,
        send_rate: 1e6,
        loss_rate: 0.0,
        rtt_mean: mean,
        rtt_dev: dev,
        rtt_gradient: gradient,
        gradient_error: error,
        rtt_samples: 20,
        rtt_min: mean - dev,
        rtt_max: mean + dev,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The controller's issued rate never drops below the configured
    /// minimum and never becomes non-finite, for arbitrary utility streams.
    #[test]
    fn rate_stays_positive_and_finite(
        utilities in prop::collection::vec(-1e6_f64..1e6, 1..300),
        seed in 0_u64..1000,
        majority in any::<bool>(),
    ) {
        let rule = if majority { ProbeRule::Majority } else { ProbeRule::Agreement };
        let mut c = controller(rule, seed);
        for &u in &utilities {
            let r = c.next_mi_rate();
            prop_assert!(r.is_finite() && r >= 0.09, "rate = {r}");
            c.on_mi_complete(u);
            prop_assert!(c.rate_mbps().is_finite());
            prop_assert!(c.rate_mbps() >= 0.09);
        }
    }

    /// Out-of-plan completions (more completions than issued MIs) never
    /// panic or corrupt state.
    #[test]
    fn extra_completions_are_harmless(
        extra in 1_usize..20,
        seed in 0_u64..100,
    ) {
        let mut c = controller(ProbeRule::Majority, seed);
        let _ = c.next_mi_rate();
        c.on_mi_complete(1.0);
        for i in 0..extra {
            c.on_mi_complete(i as f64); // nothing outstanding
        }
        prop_assert!(c.rate_mbps().is_finite());
    }

    /// Monotone-increasing utility drives the rate up overall, regardless
    /// of seed (the probing order is random but the drift must win).
    #[test]
    fn increasing_utility_raises_rate(seed in 0_u64..200) {
        let mut c = controller(ProbeRule::Majority, seed);
        let u = |r: f64| r; // strictly better at higher rate
        let r0 = c.rate_mbps();
        let mut last = r0;
        for _ in 0..200 {
            let r = c.next_mi_rate();
            c.on_mi_complete(u(r));
            last = c.rate_mbps();
        }
        prop_assert!(last > r0 * 4.0, "rate only reached {last} from {r0}");
    }

    /// The noise gate only ever zeroes metrics — it never fabricates or
    /// amplifies a gradient/deviation.
    #[test]
    fn gate_never_amplifies(
        gradient in -0.2_f64..0.2,
        error in 0.0_f64..0.2,
        dev in 0.0_f64..0.05,
        mean in 0.01_f64..0.2,
        n in 1_usize..40,
    ) {
        let mut g = MiNoiseGate::new(NoiseTolerance::Adaptive(AdaptiveNoiseParams::default()));
        for _ in 0..n {
            let out = g.process(&mi(gradient, error, dev, mean));
            prop_assert!(out.rtt_gradient == gradient || out.rtt_gradient == 0.0);
            prop_assert!(out.rtt_deviation == dev || out.rtt_deviation == 0.0);
        }
    }

    /// Vivace's flat-threshold gate passes deviation untouched and is
    /// deterministic in the gradient.
    #[test]
    fn fixed_gate_is_pure(
        gradient in -0.2_f64..0.2,
        dev in 0.0_f64..0.05,
        threshold in 0.0_f64..0.1,
    ) {
        let mut g = MiNoiseGate::new(NoiseTolerance::FixedThreshold(threshold));
        let out = g.process(&mi(gradient, 0.0, dev, 0.05));
        prop_assert_eq!(out.rtt_deviation, dev);
        if gradient.abs() >= threshold {
            prop_assert_eq!(out.rtt_gradient, gradient);
        } else {
            prop_assert_eq!(out.rtt_gradient, 0.0);
        }
    }
}
