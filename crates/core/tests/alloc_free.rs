//! Proof of the hot-path contract: once a [`ProteusSender`] reaches steady
//! state, processing sends, ACKs, timer-driven MI rolls, MI completions and
//! §4.4 mode switches performs **zero heap allocations**.
//!
//! A counting global allocator wraps the system allocator; after a warm-up
//! phase (which is allowed to grow every reusable buffer — the MI drain
//! scratch, the attribution ring, the controller's tag queue — to its
//! steady-state capacity), the allocation counter must not move across a
//! long measurement window. This is the test form of the ISSUE's acceptance
//! criterion and guards every structure DESIGN.md §4d describes:
//! `RegressionAccumulator` (fixed-size MI state), `AttributionRing`
//! (seq-indexed, amortized O(1)), `ProbePlan`/`ProbeResults` (stack-fixed
//! probe buffers) and the `[_; TREND_WINDOW_MAX]` trending window.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use proteus_core::{Mode, ProteusSender, SharedThreshold};
use proteus_trace::{RingSink, TraceSink};
use proteus_transport::{AckInfo, CongestionControl, Dur, SentPacket, Time};

/// Counts every allocation (fresh, zeroed, or growth via realloc) routed
/// through the global allocator.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

const RTT_MS: u64 = 30;

/// Drives `events` send+ACK pairs (1 ms apart, fixed 30 ms RTT), firing the
/// MI timer whenever it is due — the same shape the simulator produces for
/// a paced steady flow, so MIs roll and complete throughout.
fn drive<S: TraceSink>(cc: &mut ProteusSender<S>, seq: &mut u64, events: u64) {
    for _ in 0..events {
        *seq += 1;
        let now = Time::from_millis(*seq);
        if let Some(end) = cc.next_timer() {
            if end <= now {
                cc.on_timer(now);
            }
        }
        cc.on_packet_sent(
            now,
            &SentPacket {
                seq: *seq,
                bytes: 1500,
                sent_at: now,
            },
        );
        cc.on_ack(
            Time::from_millis(*seq + RTT_MS),
            &AckInfo {
                seq: *seq,
                bytes: 1500,
                sent_at: now,
                recv_at: Time::from_millis(*seq + RTT_MS),
                rtt: Dur::from_millis(RTT_MS),
                one_way_delay: Dur::from_millis(RTT_MS / 2),
            },
        );
    }
}

/// Runs `window` under the counter, retrying up to 3 times. The counter is
/// process-global, so the libtest harness's own threads can allocate during
/// a window and produce a false positive; a genuine per-event allocation in
/// the controller path would trip *every* window, so requiring one clean
/// window out of three keeps the property airtight while shedding harness
/// noise.
fn assert_window_alloc_free(what: &str, mut window: impl FnMut()) {
    let mut last = 0;
    for _ in 0..3 {
        let before = ALLOCS.load(Ordering::SeqCst);
        window();
        last = ALLOCS.load(Ordering::SeqCst) - before;
        if last == 0 {
            return;
        }
    }
    panic!("{what} allocated in all 3 measurement windows (last: {last} allocations)");
}

/// One test on purpose: the counter is process-global, so concurrently
/// running sibling tests would pollute the measurement windows.
#[test]
fn steady_state_controller_path_does_not_allocate() {
    // Phase 1: Proteus-S. ~160 MIs of warm-up reach steady probing/moving
    // cycles and size every reusable buffer.
    let mut cc = ProteusSender::scavenger(7);
    cc.on_flow_start(Time::ZERO);
    let mut seq = 0u64;
    drive(&mut cc, &mut seq, 5_000);

    assert_window_alloc_free(
        "steady-state Proteus-S path (10k send+ACK+MI events)",
        || drive(&mut cc, &mut seq, 10_000),
    );

    // Phase 2: Proteus-H with live §4.4 mode switching — threshold retunes
    // and `set_mode` flips between hybrid and scavenger objectives. `Mode`
    // clones only bump the shared threshold's refcount.
    let threshold = SharedThreshold::new(25.0);
    let mut cc = ProteusSender::hybrid(7, threshold.clone());
    cc.on_flow_start(Time::ZERO);
    let mut seq = 0u64;
    drive(&mut cc, &mut seq, 5_000);

    let mut round = 0u64;
    assert_window_alloc_free(
        "steady-state Proteus-H switching path (6.4k events)",
        || {
            for _ in 0..64 {
                if round.is_multiple_of(2) {
                    threshold.set(5.0);
                    cc.set_mode(Mode::Hybrid(threshold.clone()));
                } else {
                    threshold.set(50.0);
                    cc.set_mode(Mode::Scavenger);
                }
                round += 1;
                drive(&mut cc, &mut seq, 100);
            }
        },
    );

    // Phase 3: decision tracing enabled through a RingSink. The ring is
    // preallocated at construction and overwrites in place, and the drain
    // scratch can never need more than the ring's capacity, so recording
    // every MI-close/gate/transition event and draining them stays
    // allocation-free too. (With the default NoopSink the recording sites
    // compile away entirely — phases 1–2 already cover that.)
    let mut cc = ProteusSender::scavenger(7).with_sink(RingSink::new(4096));
    cc.on_flow_start(Time::ZERO);
    let mut seq = 0u64;
    let mut events: Vec<proteus_trace::DecisionEvent> = Vec::with_capacity(4096);
    drive(&mut cc, &mut seq, 5_000);
    cc.drain_decisions_into(&mut events);

    assert_window_alloc_free(
        "steady-state traced (RingSink) path (10k events + drain)",
        || {
            drive(&mut cc, &mut seq, 10_000);
            events.clear();
            cc.drain_decisions_into(&mut events);
        },
    );
    assert!(
        events
            .iter()
            .any(|e| { matches!(e.kind, proteus_trace::EventKind::MiClose(_)) }),
        "traced phase recorded no MI closes — the window measured nothing"
    );
}
