//! End-to-end behaviour of Proteus through the dumbbell simulator: the
//! macroscopic properties §6 of the paper measures, at test-sized horizons.

use proteus_baselines::{Bbr, Copa, Cubic, Ledbat};
use proteus_core::{ProteusSender, SharedThreshold};
use proteus_netsim::{run, FlowSpec, LinkSpec, Scenario, SimResult};
use proteus_transport::{CongestionControl, Dur, Time};

fn paper_link(buffer: u64) -> LinkSpec {
    LinkSpec::new(50.0, Dur::from_millis(30), buffer)
}

fn mk_cc(name: &str, seed: u64) -> Box<dyn CongestionControl> {
    match name {
        "cubic" => Box::new(Cubic::new()),
        "bbr" => Box::new(Bbr::new()),
        "copa" => Box::new(Copa::new()),
        "proteus-p" => Box::new(ProteusSender::primary(seed)),
        "proteus-s" => Box::new(ProteusSender::scavenger(seed)),
        "vivace" => Box::new(ProteusSender::vivace(seed)),
        "ledbat" => Box::new(Ledbat::new()),
        other => panic!("unknown cc {other}"),
    }
}

fn single(name: &'static str, link: LinkSpec, secs: u64) -> SimResult {
    let sc = Scenario::new(link, Dur::from_secs(secs))
        .flow(FlowSpec::bulk(name, Dur::ZERO, move || mk_cc(name, 1)))
        .with_seed(11);
    run(sc)
}

/// Primary + scavenger competition; returns (primary Mbps, scavenger Mbps)
/// over the tail window.
fn compete(primary: &'static str, scavenger: &'static str, secs: u64) -> (f64, f64) {
    let sc = Scenario::new(paper_link(375_000), Dur::from_secs(secs))
        .flow(FlowSpec::bulk("primary", Dur::ZERO, move || {
            mk_cc(primary, 3)
        }))
        .flow(FlowSpec::bulk("scav", Dur::from_secs(5), move || {
            mk_cc(scavenger, 9)
        }))
        .with_seed(11);
    let res = run(sc);
    let from = Time::from_secs_f64(secs as f64 * 0.33);
    let to = Time::from_secs_f64(secs as f64);
    (
        res.flows[0].throughput_mbps(from, to),
        res.flows[1].throughput_mbps(from, to),
    )
}

fn tail_mbps(res: &SimResult, idx: usize, secs: u64) -> f64 {
    res.flows[idx].throughput_mbps(
        Time::from_secs_f64(secs as f64 * 0.33),
        Time::from_secs_f64(secs as f64),
    )
}

#[test]
fn proteus_p_saturates_with_low_latency() {
    let res = single("proteus-p", paper_link(375_000), 30);
    let thpt = tail_mbps(&res, 0, 30);
    assert!(thpt > 45.0, "Proteus-P throughput = {thpt}");
    let p95 = res.flows[0].rtt_percentile(95.0).unwrap();
    // 2-BDP buffer would allow 90 ms RTT; Proteus stays near base 30 ms.
    assert!(p95 < 0.040, "Proteus-P p95 RTT = {p95}");
}

#[test]
fn proteus_s_alone_behaves_like_a_primary() {
    // Performance goal (2): a scavenger alone looks like a normal
    // congestion controller.
    let res = single("proteus-s", paper_link(375_000), 30);
    let thpt = tail_mbps(&res, 0, 30);
    assert!(thpt > 43.0, "Proteus-S solo throughput = {thpt}");
    let p95 = res.flows[0].rtt_percentile(95.0).unwrap();
    assert!(p95 < 0.045, "Proteus-S p95 RTT = {p95}");
}

#[test]
fn proteus_saturates_shallow_buffer_where_ledbat_cannot() {
    // Fig. 3(a): Proteus needs a tiny buffer to reach 90 % utilization;
    // LEDBAT needs ~BDP.
    let shallow = paper_link(12_000); // 8 packets ≈ 0.06 BDP
    let p = tail_mbps(&single("proteus-p", shallow, 30), 0, 30);
    assert!(p > 42.0, "Proteus-P shallow-buffer throughput = {p}");
    let l = tail_mbps(&single("ledbat", shallow, 30), 0, 30);
    // LEDBAT degrades to a Reno-like sawtooth here; Proteus stays near
    // capacity. The paper reports a 32× buffer-size gap to reach 90 %.
    assert!(
        l < p - 2.0,
        "LEDBAT {l} should trail Proteus {p} at 8-pkt buffer"
    );
    assert!(l < 45.0, "LEDBAT should miss 90% utilization: {l}");
}

#[test]
fn vivace_baseline_saturates() {
    let res = single("vivace", paper_link(375_000), 30);
    let thpt = tail_mbps(&res, 0, 30);
    assert!(thpt > 44.0, "Vivace throughput = {thpt}");
}

#[test]
fn proteus_tolerates_design_point_random_loss() {
    // Fig. 4: c = 11.35 tolerates up to 5 % random loss.
    let lossy = paper_link(375_000).with_random_loss(0.03);
    let res = single("proteus-p", lossy, 30);
    let thpt = tail_mbps(&res, 0, 30);
    assert!(thpt > 35.0, "Proteus-P under 3% loss = {thpt}");
}

#[test]
fn proteus_s_yields_to_loss_based_primaries() {
    // Fig. 6(b): primary throughput ratio ≥ ~95 % for CUBIC and BBR.
    for primary in ["cubic", "bbr"] {
        let alone = tail_mbps(
            &single(
                Box::leak(primary.to_string().into_boxed_str()),
                paper_link(375_000),
                45,
            ),
            0,
            45,
        );
        let (p, s) = compete(
            Box::leak(primary.to_string().into_boxed_str()),
            "proteus-s",
            45,
        );
        let ratio = p / alone;
        assert!(
            ratio > 0.90,
            "{primary}: ratio = {ratio} ({p} vs alone {alone})"
        );
        // Secondary goal: total utilization stays high.
        assert!(p + s > 45.0, "{primary}: joint = {}", p + s);
    }
}

#[test]
fn proteus_s_yields_to_latency_aware_primaries() {
    // Fig. 6(b): COPA ≥ 87 %; Vivace somewhat lower but still high.
    let alone = tail_mbps(&single("copa", paper_link(375_000), 45), 0, 45);
    let (p, _s) = compete("copa", "proteus-s", 45);
    assert!(p / alone > 0.85, "COPA ratio = {}", p / alone);

    // Vivace has no adaptive noise tolerance, "and thus may tolerate less
    // RTT fluctuation" — the paper reports a visibly lower ratio here too.
    let alone = tail_mbps(&single("vivace", paper_link(375_000), 45), 0, 45);
    let (p, _s) = compete("vivace", "proteus-s", 45);
    assert!(p / alone > 0.55, "Vivace ratio = {}", p / alone);
}

#[test]
fn proteus_s_yields_far_better_than_ledbat() {
    // The paper's headline: against latency-aware primaries LEDBAT takes
    // most of the link, Proteus-S leaves it nearly untouched.
    for primary in ["bbr", "copa", "vivace"] {
        let name: &'static str = Box::leak(primary.to_string().into_boxed_str());
        let (p_scav, _) = compete(name, "proteus-s", 45);
        let (p_ledbat, _) = compete(name, "ledbat", 45);
        assert!(
            p_scav > 2.0 * p_ledbat,
            "{primary}: with Proteus-S {p_scav} vs with LEDBAT {p_ledbat}"
        );
    }
}

#[test]
fn ledbat_roughly_fair_shares_with_cubic_at_2bdp() {
    // Fig. 6(a): with a 375 KB buffer (< its 100 ms target) LEDBAT fails
    // to yield to CUBIC and approximately fair-shares.
    let (p, s) = compete("cubic", "ledbat", 45);
    assert!(
        s > 0.2 * p,
        "LEDBAT should not vanish: cubic {p}, ledbat {s}"
    );
    assert!(
        p > 0.5 * s,
        "CUBIC should not vanish: cubic {p}, ledbat {s}"
    );
}

#[test]
fn scavenger_keeps_primary_rtt_low() {
    // Fig. 7: a Proteus-S background flow leaves the primary's 95th-pct
    // RTT essentially unchanged.
    let sc = Scenario::new(paper_link(375_000), Dur::from_secs(45))
        .flow(FlowSpec::bulk("copa", Dur::ZERO, || mk_cc("copa", 3)))
        .flow(FlowSpec::bulk("scav", Dur::from_secs(5), || {
            mk_cc("proteus-s", 9)
        }))
        .with_seed(11);
    let res = run(sc);
    let p95 = res.flows[0].rtt_percentile(95.0).unwrap();
    let alone = single("copa", paper_link(375_000), 45);
    let p95_alone = alone.flows[0].rtt_percentile(95.0).unwrap();
    assert!(
        p95 < p95_alone * 1.5,
        "COPA p95 inflated: {p95} vs alone {p95_alone}"
    );
}

#[test]
fn two_proteus_p_flows_share_fairly() {
    let sc = Scenario::new(paper_link(375_000), Dur::from_secs(60))
        .flow(FlowSpec::bulk("a", Dur::ZERO, || mk_cc("proteus-p", 3)))
        .flow(FlowSpec::bulk("b", Dur::from_secs(10), || {
            mk_cc("proteus-p", 9)
        }))
        .with_seed(11);
    let res = run(sc);
    let a = tail_mbps(&res, 0, 60);
    let b = tail_mbps(&res, 1, 60);
    let jain = proteus_stats::jain_index(&[a, b]).unwrap();
    assert!(jain > 0.9, "Proteus-P fairness = {jain} ({a} vs {b})");
}

#[test]
fn two_proteus_s_flows_share_fairly() {
    let sc = Scenario::new(paper_link(375_000), Dur::from_secs(60))
        .flow(FlowSpec::bulk("a", Dur::ZERO, || mk_cc("proteus-s", 3)))
        .flow(FlowSpec::bulk("b", Dur::from_secs(10), || {
            mk_cc("proteus-s", 9)
        }))
        .with_seed(11);
    let res = run(sc);
    let a = tail_mbps(&res, 0, 60);
    let b = tail_mbps(&res, 1, 60);
    let jain = proteus_stats::jain_index(&[a, b]).unwrap();
    assert!(jain > 0.85, "Proteus-S fairness = {jain} ({a} vs {b})");
    assert!(a + b > 38.0, "Proteus-S joint utilization = {}", a + b);
}

#[test]
fn mid_flow_mode_switch_changes_behaviour() {
    // Flexibility goal: one flow switches Scavenger → Primary mid-run via
    // the shared-threshold hybrid (∞ = primary, 0 = scavenger), while a
    // CUBIC primary occupies the link.
    let th = SharedThreshold::new(0.0); // start as pure scavenger
    let th_flow = th.clone();
    let sc = Scenario::new(paper_link(375_000), Dur::from_secs(80))
        .flow(FlowSpec::bulk("proteus-p", Dur::ZERO, || {
            mk_cc("proteus-p", 3)
        }))
        .flow(FlowSpec::bulk("hybrid", Dur::from_secs(5), move || {
            Box::new(ProteusSender::hybrid(9, th_flow.clone()))
        }))
        .with_seed(11);
    // Flip the threshold to ∞ at t = 40 s via a timed flip below. The
    // simulator has no external hook, so emulate the cross-layer call by
    // flipping from an application model.
    struct Flipper {
        th: SharedThreshold,
        at: Time,
        done: bool,
    }
    impl proteus_transport::Application for Flipper {
        fn bytes_to_send(&mut self, _now: Time) -> u64 {
            u64::MAX
        }
        fn next_event(&self, _now: Time) -> Option<Time> {
            if self.done {
                None
            } else {
                Some(self.at)
            }
        }
        fn on_wakeup(&mut self, now: Time) {
            if now >= self.at && !self.done {
                self.th.set(f64::INFINITY);
                self.done = true;
            }
        }
    }
    let th_app = th.clone();
    let mut sc = sc;
    sc.flows[1].app = Box::new(move || {
        Box::new(Flipper {
            th: th_app.clone(),
            at: Time::from_secs_f64(40.0),
            done: false,
        })
    });
    let res = run(sc);
    // Scavenger phase: hybrid stays small. Primary phase: it claws back a
    // serious share from CUBIC.
    let h_scav = res.flows[1].throughput_mbps(Time::from_secs_f64(15.0), Time::from_secs_f64(40.0));
    let h_prim = res.flows[1].throughput_mbps(Time::from_secs_f64(55.0), Time::from_secs_f64(80.0));
    assert!(h_scav < 16.0, "hybrid should scavenge first: {h_scav}");
    assert!(
        h_prim > h_scav + 4.0,
        "hybrid should compete after the switch: {h_scav} -> {h_prim}"
    );
}

#[test]
fn deterministic_proteus_runs() {
    let mk = || {
        let sc = Scenario::new(paper_link(375_000), Dur::from_secs(20))
            .flow(FlowSpec::bulk("p", Dur::ZERO, || mk_cc("proteus-p", 3)))
            .flow(FlowSpec::bulk("s", Dur::from_secs(2), || {
                mk_cc("proteus-s", 9)
            }))
            .with_seed(77);
        run(sc)
    };
    let a = mk();
    let b = mk();
    assert_eq!(a.flows[0].bytes_acked, b.flows[0].bytes_acked);
    assert_eq!(a.flows[1].bytes_acked, b.flows[1].bytes_acked);
}
